package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent band-parallel executor: a fixed set of goroutines
// that execute row bands of kernel operations. It replaces the
// spawn-goroutines-per-call pattern — a steady-state dispatch performs no
// allocation and no goroutine creation.
//
// Work is distributed by atomic chunk-stealing: each participant grabs the
// next chunk of rows until the range is exhausted, so uneven per-row cost
// (e.g. sparse bands) self-balances. The dispatching goroutine always
// participates, which also makes every operation safe to call when the
// pool is saturated or sized to a single CPU.
type Pool struct {
	workers int
	tasks   chan *job
	jobs    sync.Pool
}

// opCode selects the typed operation a job runs. Typed operands (rather
// than closures) keep dispatch allocation-free.
type opCode uint8

const (
	opFn opCode = iota
	opMatVec
	opMatMul
)

type job struct {
	op   opCode
	fn   func(lo, hi int) // opFn only; closure allocation is the caller's
	a, b []float64
	dst  []float64
	x    []float64
	k, n int // matmul inner dim / B cols; n doubles as matvec cols

	total int // row count being split
	chunk int
	next  atomic.Int64
	// pending counts fanned-out channel copies not yet completed; whoever
	// decrements it to zero signals done (buffered, never closed, drained
	// on reuse) so the dispatcher can park instead of spinning.
	pending atomic.Int64
	done    chan struct{}
}

// finish records one completed channel copy of j, waking its dispatcher
// when this was the last one.
//
//s2c2:noalloc
func (j *job) finish() {
	if j.pending.Add(-1) == 0 {
		select {
		case j.done <- struct{}{}:
		default: // dispatcher already observed completion
		}
	}
}

// NewPool returns a pool with the given number of worker goroutines.
// workers <= 0 selects GOMAXPROCS.
//
//s2c2:noalloc-waive
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, tasks: make(chan *job, workers)}
	p.jobs.New = func() any { return &job{done: make(chan struct{}, 1)} }
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Close stops the pool's worker goroutines. Operations already dispatched
// complete; dispatching on a closed pool panics. The shared Default pool
// must not be closed.
func (p *Pool) Close() {
	close(p.tasks)
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, created on first use with
// GOMAXPROCS workers.
//
//s2c2:noalloc-waive
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker() {
	for j := range p.tasks {
		j.run()
		j.finish()
	}
}

// run steals chunks until the row range is exhausted.
//
//s2c2:noalloc
func (j *job) run() {
	for {
		lo := int(j.next.Add(int64(j.chunk))) - j.chunk
		if lo >= j.total {
			return
		}
		hi := lo + j.chunk
		if hi > j.total {
			hi = j.total
		}
		j.exec(lo, hi)
	}
}

//s2c2:noalloc
func (j *job) exec(lo, hi int) {
	switch j.op {
	case opMatVec:
		MatVecRange(j.dst[lo:hi], j.a, j.n, j.x, lo, hi)
	case opMatMul:
		MatMulRange(j.dst, j.a, j.total, j.k, j.b, j.n, lo, hi)
	default:
		j.fn(lo, hi)
	}
}

// dispatch fans the job out to at most fan-1 pool workers (the caller is
// the remaining participant), runs the caller's share, waits for
// completion, and recycles the job.
//
// Fan-out sends are non-blocking (a saturated pool just means the caller
// does more of the work), and the completion wait is *help-first*: while
// fanned copies are outstanding the caller either executes other queued
// jobs or parks on its job's done signal — it never spins and it never
// blocks without draining the queue. Without the helping, nested dispatch
// deadlocks: every worker can be parked waiting on an inner job that only
// another parked worker could pop.
func (p *Pool) dispatch(j *job, fan int) {
	if chunks := (j.total + j.chunk - 1) / j.chunk; fan > chunks {
		fan = chunks
	}
	sent := int64(0)
	for i := 0; i < fan-1; i++ {
		select {
		case p.tasks <- j:
			sent++
		default:
			i = fan // saturated: stop fanning out
		}
	}
	j.pending.Add(sent + 1) // +1: the caller's own share below
	j.run()
	j.finish()
	for j.pending.Load() != 0 {
		select {
		case other := <-p.tasks:
			other.run()
			other.finish()
		case <-j.done:
		}
	}
	// Drop slice references before pooling (fields reset individually —
	// the struct embeds atomics and must not be copied).
	j.fn = nil
	j.a, j.b, j.dst, j.x = nil, nil, nil, nil
	p.jobs.Put(j)
}

// clampFan normalizes a caller's fan-out cap to [1, workers].
func (p *Pool) clampFan(maxFan int) int {
	if maxFan <= 0 || maxFan > p.workers {
		return p.workers
	}
	return maxFan
}

func (p *Pool) newJob() *job {
	j := p.jobs.Get().(*job)
	j.next.Store(0)
	select {
	case <-j.done: // drop a stale completion token from the previous use
	default:
	}
	return j
}

// chunkFor sizes chunks so each is roughly the active backend's per-chunk
// flop target (vector backends retire flops faster, so they want bigger
// chunks) but the range still splits into a few chunks per participant
// for load balancing.
func chunkFor(total, rowCost, fan int) int {
	chunk := active.Load().chunkFlops / rowCost
	if balanced := total / (4 * fan); balanced > 0 && chunk > balanced {
		chunk = balanced
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// MatVec computes dst = A·x (A rows×cols row-major) across the pool.
// maxFan <= 0 uses every worker. Steady state performs zero allocations.
//
//s2c2:noalloc
func (p *Pool) MatVec(dst, a []float64, rows, cols int, x []float64, maxFan int) {
	if rows == 0 {
		return
	}
	fan := p.clampFan(maxFan)
	if rows*cols < 1<<14 || fan == 1 {
		MatVec(dst, a, rows, cols, x)
		return
	}
	j := p.newJob()
	j.op = opMatVec
	j.a, j.x, j.dst = a, x, dst
	j.n = cols
	j.total = rows
	j.chunk = chunkFor(rows, 2*cols, fan)
	p.dispatch(j, fan)
}

// MatMul computes dst = A·B (A m×k, B k×n, dst m×n row-major) across the
// pool using the cache-blocked kernel per band.
//
//s2c2:noalloc
func (p *Pool) MatMul(dst, a []float64, m, k int, b []float64, n int, maxFan int) {
	if m == 0 || n == 0 {
		Zero(dst[:m*n])
		return
	}
	fan := p.clampFan(maxFan)
	if m*k*n < 1<<16 || fan == 1 {
		MatMul(dst, a, m, k, b, n)
		return
	}
	j := p.newJob()
	j.op = opMatMul
	j.a, j.b, j.dst = a, b, dst
	j.k, j.n = k, n
	j.total = m
	// Few large bands: every band packs the B panels it touches, so small
	// chunks would duplicate packing work (and defeat register blocking).
	j.chunk = (m + 2*fan - 1) / (2 * fan)
	if j.chunk < mrRows {
		j.chunk = mrRows
	}
	p.dispatch(j, fan)
}

// For runs fn over [0, total) in parallel chunks of at least minChunk rows.
// The closure may allocate; use the typed operations on hot paths.
//
//s2c2:noalloc
func (p *Pool) For(total, minChunk int, fn func(lo, hi int)) {
	p.ForMax(total, minChunk, 0, fn)
}

// ForMax is For with the fan-out capped at maxFan participants (<= 0 uses
// every pool worker). A fan of one runs fn(0, total) on the caller.
//
//s2c2:noalloc
func (p *Pool) ForMax(total, minChunk, maxFan int, fn func(lo, hi int)) {
	if total <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	fan := p.clampFan(maxFan)
	if fan == 1 || total <= minChunk {
		fn(0, total)
		return
	}
	j := p.newJob()
	j.op = opFn
	j.fn = fn
	j.total = total
	j.chunk = minChunk
	if balanced := total / (4 * fan); balanced > minChunk {
		j.chunk = balanced
	}
	p.dispatch(j, fan)
}
