//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA micro-kernels. Operand order follows Go assembler convention
// (destination last, reversed from Intel syntax): VFMADD231PD s3, s2, d
// computes d += s2 * s3.
//
// Every kernel uses a fixed accumulation order, so results are
// bit-identical run to run. Callers guarantee vector lengths are
// multiples of 8 (wrappers in avx2_amd64.go handle tails in Go).

// func dotAVX2(x, y *float64, n int) float64
//
// Four independent YMM accumulators (enough to cover FMA latency at the
// 2-loads/cycle port limit), reduced pairwise then across lanes.
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ   x+0(FP), SI
	MOVQ   y+8(FP), DI
	MOVQ   n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   CX, BX
	SHRQ   $4, BX
	JZ     dot_tail8

dot_loop16:
	VMOVUPD     (SI), Y4
	VMOVUPD     32(SI), Y5
	VMOVUPD     64(SI), Y6
	VMOVUPD     96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        BX
	JNZ         dot_loop16

dot_tail8:
	TESTQ       $8, CX
	JZ          dot_reduce
	VMOVUPD     (SI), Y4
	VMOVUPD     32(SI), Y5
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1

dot_reduce:
	VADDPD       Y1, Y0, Y0
	VADDPD       Y3, Y2, Y2
	VADDPD       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VUNPCKHPD    X0, X0, X1
	VADDSD       X1, X0, X0
	VMOVSD       X0, ret+24(FP)
	VZEROUPPER
	RET

// func axpyAVX2(a float64, x, y *float64, n int)
//
// y += a*x over four YMM lanes per iteration (fused multiply-add, one
// rounding per element).
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	VBROADCASTSD a+0(FP), Y0
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), DI
	MOVQ         n+24(FP), CX
	MOVQ         CX, BX
	SHRQ         $4, BX
	JZ           axpy_tail8

axpy_loop16:
	VMOVUPD     (DI), Y1
	VMOVUPD     32(DI), Y2
	VMOVUPD     64(DI), Y3
	VMOVUPD     96(DI), Y4
	VFMADD231PD (SI), Y0, Y1
	VFMADD231PD 32(SI), Y0, Y2
	VFMADD231PD 64(SI), Y0, Y3
	VFMADD231PD 96(SI), Y0, Y4
	VMOVUPD     Y1, (DI)
	VMOVUPD     Y2, 32(DI)
	VMOVUPD     Y3, 64(DI)
	VMOVUPD     Y4, 96(DI)
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        BX
	JNZ         axpy_loop16

axpy_tail8:
	TESTQ       $8, CX
	JZ          axpy_done
	VMOVUPD     (DI), Y1
	VMOVUPD     32(DI), Y2
	VFMADD231PD (SI), Y0, Y1
	VFMADD231PD 32(SI), Y0, Y2
	VMOVUPD     Y1, (DI)
	VMOVUPD     Y2, 32(DI)

axpy_done:
	VZEROUPPER
	RET

// func mulTile4x8AVX2(c *float64, stride int, a0, a1, a2, a3, bt *float64, kc int)
//
// The 4×8 register micro-kernel: eight YMM accumulators hold the C tile
// across the whole kc sweep (two column blocks × four rows); each k step
// is two B loads, four A broadcasts, eight FMAs. C is loaded and stored
// once, with the accumulators added in (dst += A·B semantics).
TEXT ·mulTile4x8AVX2(SB), NOSPLIT, $0-64
	MOVQ   a0+16(FP), SI
	MOVQ   a1+24(FP), DI
	MOVQ   a2+32(FP), R8
	MOVQ   a3+40(FP), R9
	MOVQ   bt+48(FP), R10
	MOVQ   kc+56(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	TESTQ  CX, CX
	JZ     tile4_store

tile4_loop:
	VMOVUPD      (R10), Y8
	VMOVUPD      32(R10), Y9
	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD (DI), Y11
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD (R8), Y12
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD (R9), Y13
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $64, R10
	ADDQ         $8, SI
	ADDQ         $8, DI
	ADDQ         $8, R8
	ADDQ         $8, R9
	DECQ         CX
	JNZ          tile4_loop

tile4_store:
	MOVQ    c+0(FP), AX
	MOVQ    stride+8(FP), BX
	SHLQ    $3, BX
	VADDPD  (AX), Y0, Y0
	VADDPD  32(AX), Y1, Y1
	VMOVUPD Y0, (AX)
	VMOVUPD Y1, 32(AX)
	ADDQ    BX, AX
	VADDPD  (AX), Y2, Y2
	VADDPD  32(AX), Y3, Y3
	VMOVUPD Y2, (AX)
	VMOVUPD Y3, 32(AX)
	ADDQ    BX, AX
	VADDPD  (AX), Y4, Y4
	VADDPD  32(AX), Y5, Y5
	VMOVUPD Y4, (AX)
	VMOVUPD Y5, 32(AX)
	ADDQ    BX, AX
	VADDPD  (AX), Y6, Y6
	VADDPD  32(AX), Y7, Y7
	VMOVUPD Y6, (AX)
	VMOVUPD Y7, 32(AX)
	VZEROUPPER
	RET

// func mulTile1x8AVX2(c, a0, bt *float64, kc int)
//
// Single-row tail of the 4×8 micro-kernel: one 8-wide accumulator pair.
TEXT ·mulTile1x8AVX2(SB), NOSPLIT, $0-32
	MOVQ   a0+8(FP), SI
	MOVQ   bt+16(FP), R10
	MOVQ   kc+24(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	TESTQ  CX, CX
	JZ     tile1_store

tile1_loop:
	VBROADCASTSD (SI), Y10
	VFMADD231PD  (R10), Y10, Y0
	VFMADD231PD  32(R10), Y10, Y1
	ADDQ         $64, R10
	ADDQ         $8, SI
	DECQ         CX
	JNZ          tile1_loop

tile1_store:
	MOVQ    c+0(FP), AX
	VADDPD  (AX), Y0, Y0
	VADDPD  32(AX), Y1, Y1
	VMOVUPD Y0, (AX)
	VMOVUPD Y1, 32(AX)
	VZEROUPPER
	RET

// GF(2³¹−1) constants for the Mersenne-folded mul-accumulate: the prime in
// every 64-bit lane, p−1 for the final conditional subtract, and the
// VPERMD index vector packing qword results back to dwords.
DATA gfP31<>+0(SB)/8, $0x7FFFFFFF
DATA gfP31<>+8(SB)/8, $0x7FFFFFFF
DATA gfP31<>+16(SB)/8, $0x7FFFFFFF
DATA gfP31<>+24(SB)/8, $0x7FFFFFFF
GLOBL gfP31<>(SB), RODATA|NOPTR, $32

DATA gfP31m1<>+0(SB)/8, $0x7FFFFFFE
DATA gfP31m1<>+8(SB)/8, $0x7FFFFFFE
DATA gfP31m1<>+16(SB)/8, $0x7FFFFFFE
DATA gfP31m1<>+24(SB)/8, $0x7FFFFFFE
GLOBL gfP31m1<>(SB), RODATA|NOPTR, $32

DATA gfPackIdx<>+0(SB)/4, $0
DATA gfPackIdx<>+4(SB)/4, $2
DATA gfPackIdx<>+8(SB)/4, $4
DATA gfPackIdx<>+12(SB)/4, $6
DATA gfPackIdx<>+16(SB)/4, $0
DATA gfPackIdx<>+20(SB)/4, $0
DATA gfPackIdx<>+24(SB)/4, $0
DATA gfPackIdx<>+28(SB)/4, $0
GLOBL gfPackIdx<>(SB), RODATA|NOPTR, $32

// func gfDotMod31AVX2(a, x *uint32, n int) uint64
//
// Partially folded inner product over GF(2³¹−1): eight elements per
// iteration as two 4-lane 64-bit accumulator chains. Per step: widen both
// operands (VPMOVZXDQ), VPMULUDQ into a 62-bit product, VPADDQ into the
// lane accumulator, then one Mersenne fold x → (x>>31) + (x&p) keeps each
// lane below 2³³ so the next product cannot overflow 64 bits. The eight
// lanes are summed horizontally at the end (< 2³⁶) and returned still
// unreduced — the Go wrapper finishes the reduction. n must be a multiple
// of 8.
TEXT ·gfDotMod31AVX2(SB), NOSPLIT, $0-32
	MOVQ    a+0(FP), SI
	MOVQ    x+8(FP), DI
	MOVQ    n+16(FP), CX
	VPXOR   Y0, Y0, Y0
	VPXOR   Y4, Y4, Y4
	VMOVDQU gfP31<>(SB), Y12
	SHRQ    $3, CX
	JZ      gfdot_reduce

gfdot_loop:
	VPMOVZXDQ (SI), Y1
	VPMOVZXDQ 16(SI), Y5
	VPMOVZXDQ (DI), Y2
	VPMOVZXDQ 16(DI), Y6
	VPMULUDQ  Y2, Y1, Y1
	VPMULUDQ  Y6, Y5, Y5
	VPADDQ    Y1, Y0, Y0
	VPADDQ    Y5, Y4, Y4

	// fold: acc = (acc >> 31) + (acc & p), each lane back below 2³³
	VPSRLQ $31, Y0, Y1
	VPSRLQ $31, Y4, Y5
	VPAND  Y12, Y0, Y0
	VPAND  Y12, Y4, Y4
	VPADDQ Y1, Y0, Y0
	VPADDQ Y5, Y4, Y4

	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  gfdot_loop

gfdot_reduce:
	VPADDQ       Y4, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDQ       X1, X0, X0
	VPSRLDQ      $8, X0, X1
	VPADDQ       X1, X0, X0
	MOVQ         X0, AX
	MOVQ         AX, ret+24(FP)
	VZEROUPPER
	RET

// func gfAxpyAVX2(dst *uint32, c uint32, src *uint32, n int)
//
// dst[i] += c·src[i] mod 2³¹−1, eight elements per iteration as two
// interleaved 4-lane 64-bit chains: widen dwords to qwords (VPMOVZXDQ),
// VPMULUDQ the 31-bit operands into 62-bit products, add dst, then two
// Mersenne folds x → (x>>31) + (x&p) and one masked subtract bring each
// lane into [0, p). Exact — same values as the scalar fold.
TEXT ·gfAxpyAVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVL         c+8(FP), AX
	MOVQ         src+16(FP), SI
	MOVQ         n+24(FP), CX
	MOVQ         AX, X0
	VPBROADCASTQ X0, Y0
	VMOVDQU      gfP31<>(SB), Y12
	VMOVDQU      gfP31m1<>(SB), Y13
	VMOVDQU      gfPackIdx<>(SB), Y11
	SHRQ         $3, CX
	JZ           gf_done

gf_loop:
	VPMOVZXDQ (SI), Y1
	VPMOVZXDQ 16(SI), Y5
	VPMOVZXDQ (DI), Y2
	VPMOVZXDQ 16(DI), Y6
	VPMULUDQ  Y0, Y1, Y1
	VPMULUDQ  Y0, Y5, Y5
	VPADDQ    Y2, Y1, Y1
	VPADDQ    Y6, Y5, Y5

	// fold 1: x = (x >> 31) + (x & p)
	VPSRLQ $31, Y1, Y2
	VPSRLQ $31, Y5, Y6
	VPAND  Y12, Y1, Y1
	VPAND  Y12, Y5, Y5
	VPADDQ Y2, Y1, Y1
	VPADDQ Y6, Y5, Y5

	// fold 2
	VPSRLQ $31, Y1, Y2
	VPSRLQ $31, Y5, Y6
	VPAND  Y12, Y1, Y1
	VPAND  Y12, Y5, Y5
	VPADDQ Y2, Y1, Y1
	VPADDQ Y6, Y5, Y5

	// conditional subtract: x -= p when x > p-1
	VPCMPGTQ Y13, Y1, Y2
	VPCMPGTQ Y13, Y5, Y6
	VPAND    Y12, Y2, Y2
	VPAND    Y12, Y6, Y6
	VPSUBQ   Y2, Y1, Y1
	VPSUBQ   Y6, Y5, Y5

	// pack qword lanes back to dwords and store
	VPERMD  Y1, Y11, Y1
	VPERMD  Y5, Y11, Y5
	VMOVDQU X1, (DI)
	VMOVDQU X5, 16(DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf_loop

gf_done:
	VZEROUPPER
	RET
