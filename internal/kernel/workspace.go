package kernel

import (
	"math/bits"
	"sync"
)

// Workspace buffers: sync.Pool-backed float64 scratch recycled across
// rounds. Two idioms are supported:
//
//   - Buf: borrow/return for code without a natural owner (e.g. concurrent
//     RPC result buffers). GetBuf/Put are allocation-free in steady state.
//   - Grow: grow-once slices owned by a long-lived struct (decode
//     workspaces, cluster scratch), which is the preferred pattern on
//     paths that must be provably zero-alloc.

// Buf is a pooled float64 buffer. F has the requested length; capacity may
// be larger. Contents are arbitrary on Get.
type Buf struct {
	F []float64
}

// bufClasses pools buffers in power-of-two capacity classes 2^minClass ..
// 2^maxClass elements. Larger requests fall through to plain allocation.
const (
	minClass = 6  // 64 elements (512 B)
	maxClass = 24 // 16 Mi elements (128 MiB)
)

var bufClasses [maxClass - minClass + 1]sync.Pool

func classFor(n int) int {
	if n <= 1<<minClass {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClass
	if c > maxClass-minClass {
		return -1
	}
	return c
}

// GetBuf returns a pooled buffer with b.F of length n. Contents are
// arbitrary; use GetBufZeroed when zeros are required.
//
//s2c2:noalloc
func GetBuf(n int) *Buf {
	c := classFor(n)
	if c < 0 {
		// Oversized request: no pool class fits, so this path allocates.
		//s2c2:waive noalloc
		return &Buf{F: make([]float64, n)}
	}
	if v := bufClasses[c].Get(); v != nil {
		b := v.(*Buf)
		b.F = b.F[:n]
		return b
	}
	// Pool miss: first use of this size class mints the buffer it will
	// recycle forever after.
	//s2c2:waive noalloc
	return &Buf{F: make([]float64, n, 1<<(minClass+c))}
}

// GetBufZeroed returns a pooled buffer of length n with all elements zero.
//
//s2c2:noalloc
func GetBufZeroed(n int) *Buf {
	b := GetBuf(n)
	Zero(b.F)
	return b
}

// Put returns the buffer to its size-class pool. The caller must not use
// b.F afterwards.
//
//s2c2:recycler
func (b *Buf) Put() {
	c := classFor(cap(b.F))
	if c < 0 {
		return // oversize: let the GC have it
	}
	// Only pool buffers whose capacity is exactly a class size, so a
	// pooled buffer can always serve any request in its class.
	if cap(b.F) != 1<<(minClass+c) {
		return
	}
	b.F = b.F[:0]
	bufClasses[c].Put(b)
}

// GrowSlice returns s resized to length n, reallocating only when
// capacity is insufficient — the one grow-don't-copy helper behind every
// typed scratch slice in the stack. Contents of new space are
// unspecified; on reallocation old contents are NOT carried over.
//
//s2c2:noalloc
func GrowSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		// Capacity growth is the one sanctioned allocation: callers reuse
		// the returned slice, so steady-state rounds never reach it.
		//s2c2:waive noalloc
		return make([]T, n)
	}
	return s[:n]
}

// Grow returns s resized to length n, reallocating only when capacity is
// insufficient. New space is NOT zeroed; see GrowZeroed.
//
//s2c2:noalloc
func Grow(s []float64, n int) []float64 { return GrowSlice(s, n) }

// GrowZeroed returns s resized to length n with every element zeroed.
//
//s2c2:noalloc
func GrowZeroed(s []float64, n int) []float64 {
	s = Grow(s, n)
	Zero(s)
	return s
}

// GrowInts is Grow for int scratch (coverage counters, offsets).
//
//s2c2:noalloc
func GrowInts(s []int, n int) []int { return GrowSlice(s, n) }
