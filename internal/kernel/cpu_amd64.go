//go:build amd64 && !noasm

package kernel

// Hand-rolled CPUID feature detection (the module is dependency-free, so
// no golang.org/x/sys/cpu). Detection runs once during package variable
// initialization; see archBackends.

// cpuid executes the CPUID instruction with the given leaf/subleaf.
// Feature detection, not a dispatched kernel.
//
//s2c2:waive backendpair
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked by the caller).
// Feature detection, not a dispatched kernel.
//
//s2c2:waive backendpair
func xgetbv() (eax, edx uint32)

// cpuHasAVX2FMA reports whether the CPU and OS support the AVX2 backend:
// AVX2 + FMA instruction sets, and XMM/YMM register state enabled by the
// OS (XCR0 bits 1 and 2).
func cpuHasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12 // leaf 1 ECX
		osxsaveBit = 1 << 27 // leaf 1 ECX
		avxBit     = 1 << 28 // leaf 1 ECX
		avx2Bit    = 1 << 5  // leaf 7 EBX
		ymmState   = 0x6     // XCR0: XMM (bit 1) + YMM (bit 2)
	)
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 || c1&fmaBit == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&ymmState != ymmState {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&avx2Bit != 0
}
