//go:build amd64 && !noasm

package kernel

// Hand-rolled CPUID feature detection (the module is dependency-free, so
// no golang.org/x/sys/cpu). Detection runs once during package variable
// initialization; see archBackends.

// cpuid executes the CPUID instruction with the given leaf/subleaf.
// Feature detection, not a dispatched kernel.
//
//s2c2:waive backendpair
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked by the caller).
// Feature detection, not a dispatched kernel.
//
//s2c2:waive backendpair
func xgetbv() (eax, edx uint32)

// cpuHasAVX2FMA reports whether the CPU and OS support the AVX2 backend:
// AVX2 + FMA instruction sets, and XMM/YMM register state enabled by the
// OS (XCR0 bits 1 and 2).
func cpuHasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12 // leaf 1 ECX
		osxsaveBit = 1 << 27 // leaf 1 ECX
		avxBit     = 1 << 28 // leaf 1 ECX
		avx2Bit    = 1 << 5  // leaf 7 EBX
		ymmState   = 0x6     // XCR0: XMM (bit 1) + YMM (bit 2)
	)
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 || c1&fmaBit == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&ymmState != ymmState {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&avx2Bit != 0
}

// cpuHasAVX512 reports whether the CPU and OS support the AVX-512 backend:
// the AVX512F/DQ/BW/VL instruction subsets (leaf 7 EBX), plus OPMASK, ZMM
// and Hi16-ZMM register state enabled by the OS (XCR0 bits 5–7, on top of
// the XMM/YMM bits). The FMA/OSXSAVE base is rechecked via cpuHasAVX2FMA
// so a backend never registers on a CPU that could not also run avx2.
func cpuHasAVX512() bool {
	if !cpuHasAVX2FMA() {
		return false
	}
	const (
		avx512fBit  = 1 << 16 // leaf 7 EBX
		avx512dqBit = 1 << 17 // leaf 7 EBX
		avx512bwBit = 1 << 30 // leaf 7 EBX
		avx512vlBit = 1 << 31 // leaf 7 EBX
		need        = avx512fBit | avx512dqBit | avx512bwBit | avx512vlBit

		// XCR0: XMM (1) + YMM (2) + OPMASK (5) + ZMM_Hi256 (6) + Hi16_ZMM (7)
		zmmState = 0xE6
	)
	_, b7, _, _ := cpuid(7, 0)
	if b7&need != need {
		return false
	}
	lo, _ := xgetbv()
	return lo&zmmState == zmmState
}
