package kernel

import (
	"math/rand"
	"sync"
	"testing"
)

// Kernel-layer micro-benchmarks: blocked vs naive compute kernels, and the
// persistent pool vs the spawn-goroutines-per-call pattern it replaced.
// Run with:
//
//	go test ./internal/kernel -bench . -benchmem

func benchMatVec(b *testing.B, f func(dst, a []float64, rows, cols int, x []float64)) {
	rng := rand.New(rand.NewSource(1))
	const rows, cols = 1024, 1024
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	dst := make([]float64, rows)
	b.SetBytes(8 * rows * cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, a, rows, cols, x)
	}
}

func BenchmarkMatVecKernel1024(b *testing.B) { benchMatVec(b, MatVec) }
func BenchmarkMatVecNaive1024(b *testing.B)  { benchMatVec(b, naiveMatVec) }

func benchMatMul(b *testing.B, size int, f func(dst, a []float64, m, k int, bb []float64, n int)) {
	rng := rand.New(rand.NewSource(2))
	a, bb := randSlice(size*size, rng), randSlice(size*size, rng)
	dst := make([]float64, size*size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, a, size, size, bb, size)
	}
}

func BenchmarkMatMulBlocked256(b *testing.B)  { benchMatMul(b, 256, MatMul) }
func BenchmarkMatMulNaive256(b *testing.B)    { benchMatMul(b, 256, naiveMatMul) }
func BenchmarkMatMulBlocked1024(b *testing.B) { benchMatMul(b, 1024, MatMul) }
func BenchmarkMatMulNaive1024(b *testing.B)   { benchMatMul(b, 1024, naiveMatMul) }

// spawnMatVec is the pre-refactor parallel pattern: fresh goroutines and a
// WaitGroup per call.
func spawnMatVec(dst, a []float64, rows, cols int, x []float64, workers int) {
	var wg sync.WaitGroup
	band := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := lo + band
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			MatVecRange(dst[lo:hi], a, cols, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func BenchmarkParallelMatVecPooled(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const rows, cols = 1024, 1024
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	dst := make([]float64, rows)
	p := Default()
	b.SetBytes(8 * rows * cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MatVec(dst, a, rows, cols, x, 0)
	}
}

func BenchmarkParallelMatVecSpawn(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const rows, cols = 1024, 1024
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	dst := make([]float64, rows)
	workers := Default().Workers()
	b.SetBytes(8 * rows * cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spawnMatVec(dst, a, rows, cols, x, workers)
	}
}
