//go:build amd64 && !noasm

package kernel

import "math"

// The AVX-512 backend: hand-written assembly micro-kernels using 512-bit
// FMA accumulators and opmask registers (asm512_amd64.s), plus the Go
// blocking/packing drivers that feed them. Where the AVX2 backend routes
// partial mat-mul tiles through zero-padded scratch, this backend passes
// an explicit column mask to the tile kernels and lets EVEX masked
// loads/stores handle the edges — no scratch tile, no store amplification.
// Accumulation order is fixed (see each wrapper), so results are
// bit-identical run to run on this backend; versus the generic backend,
// float64 results differ only by accumulated rounding and GF results are
// exact.

// nrColsAVX512 is the packed-tile width of the AVX-512 mat-mul
// micro-kernel: one 8-lane ZMM column block per C row. mrRowsAVX512 C
// rows ride one B-tile sweep, so the 8×8 tile lives in eight ZMM
// accumulators. The packed-tile layout is identical to the AVX2
// backend's, so the same packers feed both.
const (
	nrColsAVX512 = nrColsAVX2
	mrRowsAVX512 = 8

	// fullTileMask is the 8-column opmask for interior tiles; edge tiles
	// use (1<<w)-1.
	fullTileMask = 0xFF
)

var avx512Backend = &backendImpl{
	name:             "avx512",
	dot:              dotVec512,
	axpy:             axpyVec512,
	matVecRange:      matVecRangeVec512,
	matVecRangeBatch: matVecRangeBatchVec512,
	matMulAccRange:   matMulAccRangeAVX512,
	gfAxpy:           gfAxpyVec512,
	gfMatVec:         gfMatVecVec512,
	gfMatVecBatch:    gfMatVecBatchVec512,
	gfMatMulAccRange: gfMatMulAccRangeVec512,
	chunkFlops:       128 * 1024,
}

// dotAVX512 processes n elements (n must be a multiple of 8) with four
// independent ZMM FMA accumulators, reduced in a fixed order.
//
//go:noescape
func dotAVX512(x, y *float64, n int) float64

// axpyAVX512 computes y[0:n] += a*x[0:n]; n must be a multiple of 8.
//
//go:noescape
func axpyAVX512(a float64, x, y *float64, n int)

// mulTile8x8AVX512 accumulates an 8-row × 8-col C tile (rows stride
// elements apart) from eight A row fragments (rows lda elements apart)
// and a packed kc×8 B tile, storing only the columns selected by the
// low 8 bits of mask.
//
//go:noescape
func mulTile8x8AVX512(c *float64, stride int, a *float64, lda int, bt *float64, kc int, mask uint64)

// mulTile1x8AVX512 is the single-row tail of mulTile8x8AVX512.
//
//go:noescape
func mulTile1x8AVX512(c, a0, bt *float64, kc int, mask uint64)

// gfAxpyAVX512 computes dst[0:n] += c·src[0:n] over GF(2³¹−1) in 8-lane
// 64-bit vectors (Mersenne folding); n must be a multiple of 8.
//
//go:noescape
func gfAxpyAVX512(dst *uint32, c uint32, src *uint32, n int)

// gfDotMod31AVX512 returns a partially folded Σ a[i]·x[i] over GF(2³¹−1):
// the result is below 2³⁷ and congruent to the true sum mod 2³¹−1. n must
// be a multiple of 8; the caller finishes the reduction.
//
//go:noescape
func gfDotMod31AVX512(a, x *uint32, n int) uint64

// gfMatMulRowAccAVX512 accumulates one row of A·B over GF(2³¹−1) into
// dst (length n): dst[j] += Σ_t a[t]·B[t,j] mod 2³¹−1, with the k sweep
// fused in registers per 8-column block and opmasked column tails.
//
//go:noescape
func gfMatMulRowAccAVX512(dst *uint32, a *uint32, k int, b *uint32, n int)

// dotVec512 sums the vectorized prefix in the assembly kernel, then folds
// the up-to-7-element tail in sequentially — one fixed order per length.
//
//s2c2:noalloc
func dotVec512(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s float64
	if nv := n &^ 7; nv > 0 {
		s = dotAVX512(&x[0], &y[0], nv)
	}
	for i := n &^ 7; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// axpyVec512 must be elementwise position-independent: callers band flat
// slices at arbitrary offsets and the results must be bit-identical to
// one unbanded call. The assembly lanes use fused multiply-adds, so the
// scalar tail uses math.FMA for the identical single rounding.
//
//s2c2:noalloc
func axpyVec512(a float64, x, y []float64) {
	n := len(y)
	x = x[:n]
	if nv := n &^ 7; nv > 0 {
		axpyAVX512(a, &x[0], &y[0], nv)
	}
	for i := n &^ 7; i < n; i++ {
		y[i] = math.FMA(a, x[i], y[i])
	}
}

//s2c2:noalloc
func matVecRangeVec512(dst, a []float64, cols int, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = dotVec512(a[i*cols:(i+1)*cols], x)
	}
}

// matMulAccRangeAVX512 accumulates rows [lo, hi) of A·B into dst with the
// same kcBlock×ncBlock cache blocking and packed 8-column tiles as the
// AVX2 backend, feeding the 8×8 ZMM FMA micro-kernel. Edge tiles (final
// panel columns when nc is not a multiple of 8) pass a (1<<w)-1 column
// mask so the kernel's opmasked C accumulate/store never touches memory
// past the row end — no zero-padded scratch tile. Each C row's FMA chain
// is identical in the 8-row and 1-row kernels, so banding at any row
// boundary is bit-identical on this backend.
//
//s2c2:noalloc
func matMulAccRangeAVX512(dst, a []float64, k int, b []float64, n, lo, hi int) {
	if hi <= lo || n == 0 || k == 0 {
		return
	}
	buf := GetBuf(kcBlock * ncBlock)
	defer buf.Put()
	for kk := 0; kk < k; kk += kcBlock {
		kc := min(kcBlock, k-kk)
		for jj := 0; jj < n; jj += ncBlock {
			nc := min(ncBlock, n-jj)
			packPanel8(buf.F, b, n, kk, kc, jj, nc)
			tiles := (nc + nrColsAVX512 - 1) / nrColsAVX512
			i := lo
			for ; i+mrRowsAVX512 <= hi; i += mrRowsAVX512 {
				for t := 0; t < tiles; t++ {
					bt := &buf.F[t*kc*nrColsAVX512]
					j := jj + t*nrColsAVX512
					mask := uint64(fullTileMask)
					if w := nc - t*nrColsAVX512; w < nrColsAVX512 {
						mask = 1<<uint(w) - 1
					}
					mulTile8x8AVX512(&dst[i*n+j], n, &a[i*k+kk], k, bt, kc, mask)
				}
			}
			for ; i < hi; i++ {
				for t := 0; t < tiles; t++ {
					bt := &buf.F[t*kc*nrColsAVX512]
					j := jj + t*nrColsAVX512
					mask := uint64(fullTileMask)
					if w := nc - t*nrColsAVX512; w < nrColsAVX512 {
						mask = 1<<uint(w) - 1
					}
					mulTile1x8AVX512(&dst[i*n+j], &a[i*k+kk], bt, kc, mask)
				}
			}
		}
	}
}

// matVecRangeBatchVec512 treats the batch as a skinny mat-mul against the
// implicit cols×w right-hand side whose column l is x_l, like the AVX2
// backend but with the 8-row ZMM micro-kernel and an opmasked lane tail:
// lane groups narrower than eight write through a (1<<lw)-1 column mask
// instead of a scratch tile. Each output element's accumulation order is
// the micro-kernel's — fixed, and band-invariant because per-row chains
// are identical in both micro-kernels.
//
//s2c2:noalloc
func matVecRangeBatchVec512(dst, a []float64, cols int, xs []float64, w, lo, hi int) {
	if hi <= lo || w <= 0 {
		return
	}
	Zero(dst[:(hi-lo)*w])
	if cols == 0 {
		return
	}
	buf := GetBuf(kcBlock * nrColsAVX512)
	defer buf.Put()
	for l0 := 0; l0 < w; l0 += nrColsAVX512 {
		lw := min(nrColsAVX512, w-l0)
		mask := uint64(1)<<uint(lw) - 1
		for kk := 0; kk < cols; kk += kcBlock {
			kc := min(kcBlock, cols-kk)
			packXsTile8(buf.F, xs, cols, l0, lw, kk, kc)
			i := lo
			for ; i+mrRowsAVX512 <= hi; i += mrRowsAVX512 {
				mulTile8x8AVX512(&dst[(i-lo)*w+l0], w, &a[i*cols+kk], cols, &buf.F[0], kc, mask)
			}
			for ; i < hi; i++ {
				mulTile1x8AVX512(&dst[(i-lo)*w+l0], &a[i*cols+kk], &buf.F[0], kc, mask)
			}
		}
	}
}

// gfDotVec512 is the 8-lane vectorized GF(2³¹−1) inner product: the
// assembly kernel accumulates sixteen 64-bit lanes with one Mersenne fold
// per step and returns their partially folded sum (< 2³⁷); the scalar
// tail continues the same accumulate-fold recurrence before the final
// reduction. Modular reduction is order-independent, so the result is
// exactly the canonical inner product — identical to the generic backend.
//
//s2c2:noalloc
func gfDotVec512(row, x []uint32) uint32 {
	n := len(row)
	x = x[:n]
	var acc uint64
	if nv := n &^ 7; nv > 0 {
		acc = gfDotMod31AVX512(&row[0], &x[0], nv)
	}
	for i := n &^ 7; i < n; i++ {
		acc += uint64(row[i]) * uint64(x[i]) // < 2³⁷ + 2⁶² < 2⁶³
		acc = (acc >> 31) + (acc & p31)      // < 2³³
	}
	acc = (acc >> 31) + (acc & p31) // < 2³¹ + 2⁶ < 2·p31
	if acc >= p31 {
		acc -= p31
	}
	return uint32(acc)
}

//s2c2:noalloc
func gfMatVecVec512(dst, a []uint32, cols int, x []uint32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = gfDotVec512(a[i*cols:(i+1)*cols], x)
	}
}

// gfMatVecBatchVec512 walks each A row once across all w lanes: the row
// is hot in L1 for every lane past the first, so the A DRAM stream is
// amortized w ways.
//
//s2c2:noalloc
func gfMatVecBatchVec512(dst, a []uint32, cols int, xs []uint32, w, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a[i*cols : (i+1)*cols]
		out := dst[(i-lo)*w : (i-lo+1)*w]
		for l := 0; l < w; l++ {
			out[l] = gfDotVec512(row, xs[l*cols:(l+1)*cols])
		}
	}
}

//s2c2:noalloc
func gfAxpyVec512(dst []uint32, c uint32, src []uint32) {
	src = src[:len(dst)]
	if nv := len(dst) &^ 7; nv > 0 {
		gfAxpyAVX512(&dst[0], c, &src[0], nv)
	}
	for i := len(dst) &^ 7; i < len(dst); i++ {
		dst[i] = gfMulAdd31(dst[i], c, src[i])
	}
}

// gfMatMulAccRangeVec512 accumulates rows [lo, hi) of A·B over the field
// into band-relative dst through the fused row kernel: the whole k sweep
// of each 8-column block stays in one ZMM accumulator (one fold per
// term), instead of the k separate load/reduce/store round trips the
// axpy-sweep backends make. Opmasked column tails need no padding, and
// the result is exactly the field value — identical on every backend.
//
//s2c2:noalloc
func gfMatMulAccRangeVec512(dst, a []uint32, k int, b []uint32, n, lo, hi int) {
	if hi <= lo || n == 0 || k == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		gfMatMulRowAccAVX512(&dst[(i-lo)*n], &a[i*k], k, &b[0], n)
	}
}
