//go:build amd64 && !noasm

package kernel

import "math"

// The AVX2 backend: hand-written assembly micro-kernels using 256-bit FMA
// accumulators (asm_amd64.s), plus the Go blocking/packing drivers that
// feed them. Accumulation order is fixed (see each wrapper), so results
// are bit-identical run to run on this backend; versus the generic
// backend, float64 results differ only by accumulated rounding (different
// summation order and fused multiply-adds) and GF results are exact.

// nrColsAVX2 is the packed-tile width of the AVX2 mat-mul micro-kernel:
// two 4-lane YMM column blocks per C row, four C rows, so the 4×8 tile
// lives in eight YMM accumulators across the whole kc sweep.
const nrColsAVX2 = 8

var avx2Backend = &backendImpl{
	name:             "avx2",
	dot:              dotVec,
	axpy:             axpyVec,
	matVecRange:      matVecRangeVec,
	matVecRangeBatch: matVecRangeBatchVec,
	matMulAccRange:   matMulAccRangeAVX2,
	gfAxpy:           gfAxpyVec,
	gfMatVec:         gfMatVecVec,
	gfMatVecBatch:    gfMatVecBatchVec,
	gfMatMulAccRange: gfMatMulAccRangeVec,
	chunkFlops:       64 * 1024,
}

// dotAVX2 processes n elements (n must be a multiple of 8) with four
// independent YMM FMA accumulators, reduced in a fixed order.
//
//go:noescape
func dotAVX2(x, y *float64, n int) float64

// axpyAVX2 computes y[0:n] += a*x[0:n]; n must be a multiple of 8.
//
//go:noescape
func axpyAVX2(a float64, x, y *float64, n int)

// mulTile4x8AVX2 accumulates a 4-row × 8-col C tile (rows stride elements
// apart) from four A row fragments and a packed kc×8 B tile.
//
//go:noescape
func mulTile4x8AVX2(c *float64, stride int, a0, a1, a2, a3, bt *float64, kc int)

// mulTile1x8AVX2 is the single-row tail of mulTile4x8AVX2.
//
//go:noescape
func mulTile1x8AVX2(c, a0, bt *float64, kc int)

// gfAxpyAVX2 computes dst[0:n] += c·src[0:n] over GF(2³¹−1) in 4-lane
// 64-bit vectors (Mersenne folding); n must be a multiple of 8.
//
//go:noescape
func gfAxpyAVX2(dst *uint32, c uint32, src *uint32, n int)

// gfDotMod31AVX2 returns a partially folded Σ a[i]·x[i] over GF(2³¹−1):
// the result is below 2³⁶ and congruent to the true sum mod 2³¹−1. n must
// be a multiple of 8; the caller finishes the reduction.
//
//go:noescape
func gfDotMod31AVX2(a, x *uint32, n int) uint64

// dotVec sums the vectorized prefix in the assembly kernel, then folds the
// up-to-7-element tail in sequentially — one fixed order per length.
//
//s2c2:noalloc
func dotVec(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s float64
	if nv := n &^ 7; nv > 0 {
		s = dotAVX2(&x[0], &y[0], nv)
	}
	for i := n &^ 7; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// axpyVec must be elementwise position-independent: callers band flat
// slices at arbitrary offsets (parallel encode) and the results must be
// bit-identical to one unbanded call. The assembly lanes use fused
// multiply-adds, so the scalar tail uses math.FMA (hardware FMA on any
// CPU this backend dispatches on) for the identical single rounding.
//
//s2c2:noalloc
func axpyVec(a float64, x, y []float64) {
	n := len(y)
	x = x[:n]
	if nv := n &^ 7; nv > 0 {
		axpyAVX2(a, &x[0], &y[0], nv)
	}
	for i := n &^ 7; i < n; i++ {
		y[i] = math.FMA(a, x[i], y[i])
	}
}

//s2c2:noalloc
func matVecRangeVec(dst, a []float64, cols int, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = dotVec(a[i*cols:(i+1)*cols], x)
	}
}

// matMulAccRangeAVX2 accumulates rows [lo, hi) of A·B into dst with the
// same kcBlock×ncBlock cache blocking as the generic backend but 8-column
// packed tiles feeding the 4×8 FMA micro-kernel. Edge tiles (final panel
// columns when nc is not a multiple of 8) are computed full-width into a
// zero-padded scratch tile and accumulated column-by-column, so the
// assembly kernel never needs column masking.
//
//s2c2:noalloc
func matMulAccRangeAVX2(dst, a []float64, k int, b []float64, n, lo, hi int) {
	if hi <= lo || n == 0 || k == 0 {
		return
	}
	buf := GetBuf(kcBlock * ncBlock)
	defer buf.Put()
	var edge [mrRows * nrColsAVX2]float64
	for kk := 0; kk < k; kk += kcBlock {
		kc := min(kcBlock, k-kk)
		for jj := 0; jj < n; jj += ncBlock {
			nc := min(ncBlock, n-jj)
			packPanel8(buf.F, b, n, kk, kc, jj, nc)
			tiles := (nc + nrColsAVX2 - 1) / nrColsAVX2
			i := lo
			for ; i+mrRows <= hi; i += mrRows {
				a0 := &a[i*k+kk]
				a1 := &a[(i+1)*k+kk]
				a2 := &a[(i+2)*k+kk]
				a3 := &a[(i+3)*k+kk]
				for t := 0; t < tiles; t++ {
					bt := &buf.F[t*kc*nrColsAVX2]
					j := jj + t*nrColsAVX2
					if w := nc - t*nrColsAVX2; w < nrColsAVX2 {
						edge = [mrRows * nrColsAVX2]float64{}
						mulTile4x8AVX2(&edge[0], nrColsAVX2, a0, a1, a2, a3, bt, kc)
						for r := 0; r < mrRows; r++ {
							row := dst[(i+r)*n+j : (i+r)*n+j+w]
							for c := range row {
								row[c] += edge[r*nrColsAVX2+c]
							}
						}
					} else {
						mulTile4x8AVX2(&dst[i*n+j], n, a0, a1, a2, a3, bt, kc)
					}
				}
			}
			for ; i < hi; i++ {
				a0 := &a[i*k+kk]
				for t := 0; t < tiles; t++ {
					bt := &buf.F[t*kc*nrColsAVX2]
					j := jj + t*nrColsAVX2
					if w := nc - t*nrColsAVX2; w < nrColsAVX2 {
						edge = [mrRows * nrColsAVX2]float64{}
						mulTile1x8AVX2(&edge[0], a0, bt, kc)
						row := dst[i*n+j : i*n+j+w]
						for c := range row {
							row[c] += edge[c]
						}
					} else {
						mulTile1x8AVX2(&dst[i*n+j], a0, bt, kc)
					}
				}
			}
		}
	}
}

// packPanel8 copies the B panel rows [kk,kk+kc) × cols [jj,jj+nc) into dst
// as 8-column tiles, each tile stored kc×8 row-major, the final tile
// zero-padded to width 8. The padded panel never exceeds kcBlock×ncBlock
// elements because ncBlock is a multiple of 8.
func packPanel8(dst, b []float64, n, kk, kc, jj, nc int) {
	tiles := (nc + nrColsAVX2 - 1) / nrColsAVX2
	for t := 0; t < tiles; t++ {
		base := t * kc * nrColsAVX2
		j0 := jj + t*nrColsAVX2
		w := nc - t*nrColsAVX2
		if w >= nrColsAVX2 {
			for kx := 0; kx < kc; kx++ {
				src := b[(kk+kx)*n+j0 : (kk+kx)*n+j0+nrColsAVX2]
				copy(dst[base+kx*nrColsAVX2:base+(kx+1)*nrColsAVX2], src)
			}
			continue
		}
		for kx := 0; kx < kc; kx++ {
			d := dst[base+kx*nrColsAVX2 : base+(kx+1)*nrColsAVX2]
			for c := 0; c < nrColsAVX2; c++ {
				if c < w {
					d[c] = b[(kk+kx)*n+j0+c]
				} else {
					d[c] = 0
				}
			}
		}
	}
}

// matVecRangeBatchVec treats the batch as a skinny mat-mul against the
// implicit cols×w right-hand side whose column l is x_l, driving the same
// 4×8 FMA micro-kernels as the mat-mul backend: one sweep of A feeds up
// to eight x-vectors per tile at full FMA throughput instead of being
// DRAM-bound on the A stream. The x rows are packed into a zero-padded
// kc×8 tile per lane group; lane groups narrower than eight go through a
// zeroed scratch tile exactly like the mat-mul edge path. Each output
// element's accumulation order is the micro-kernel's — fixed, and
// band-invariant because rows are independent in both micro-kernels.
//
//s2c2:noalloc
func matVecRangeBatchVec(dst, a []float64, cols int, xs []float64, w, lo, hi int) {
	if hi <= lo || w <= 0 {
		return
	}
	Zero(dst[:(hi-lo)*w])
	if cols == 0 {
		return
	}
	buf := GetBuf(kcBlock * nrColsAVX2)
	defer buf.Put()
	var edge [mrRows * nrColsAVX2]float64
	for l0 := 0; l0 < w; l0 += nrColsAVX2 {
		lw := min(nrColsAVX2, w-l0)
		for kk := 0; kk < cols; kk += kcBlock {
			kc := min(kcBlock, cols-kk)
			packXsTile8(buf.F, xs, cols, l0, lw, kk, kc)
			i := lo
			for ; i+mrRows <= hi; i += mrRows {
				a0 := &a[i*cols+kk]
				a1 := &a[(i+1)*cols+kk]
				a2 := &a[(i+2)*cols+kk]
				a3 := &a[(i+3)*cols+kk]
				if lw == nrColsAVX2 {
					mulTile4x8AVX2(&dst[(i-lo)*w+l0], w, a0, a1, a2, a3, &buf.F[0], kc)
				} else {
					edge = [mrRows * nrColsAVX2]float64{}
					mulTile4x8AVX2(&edge[0], nrColsAVX2, a0, a1, a2, a3, &buf.F[0], kc)
					for r := 0; r < mrRows; r++ {
						row := dst[(i-lo+r)*w+l0 : (i-lo+r)*w+l0+lw]
						for c := range row {
							row[c] += edge[r*nrColsAVX2+c]
						}
					}
				}
			}
			for ; i < hi; i++ {
				a0 := &a[i*cols+kk]
				if lw == nrColsAVX2 {
					mulTile1x8AVX2(&dst[(i-lo)*w+l0], a0, &buf.F[0], kc)
				} else {
					edge = [mrRows * nrColsAVX2]float64{}
					mulTile1x8AVX2(&edge[0], a0, &buf.F[0], kc)
					row := dst[(i-lo)*w+l0 : (i-lo)*w+l0+lw]
					for c := range row {
						row[c] += edge[c]
					}
				}
			}
		}
	}
}

// packXsTile8 packs elements [kk, kk+kc) of lanes [l0, l0+lw) of the
// concatenated x-vectors into one kc×8 tile (tile row r holds element
// kk+r of each lane), zero-padded to width 8 so the micro-kernel needs no
// column masking.
func packXsTile8(dst, xs []float64, cols, l0, lw, kk, kc int) {
	for kx := 0; kx < kc; kx++ {
		d := dst[kx*nrColsAVX2 : (kx+1)*nrColsAVX2]
		for c := 0; c < nrColsAVX2; c++ {
			if c < lw {
				d[c] = xs[(l0+c)*cols+kk+kx]
			} else {
				d[c] = 0
			}
		}
	}
}

// gfDotVec is the vectorized GF(2³¹−1) inner product: the assembly kernel
// accumulates eight 64-bit lanes with one Mersenne fold per step and
// returns their partially folded sum (< 2³⁶); the scalar tail continues
// the same accumulate-fold recurrence before the final reduction. Modular
// reduction is order-independent, so the result is exactly the canonical
// inner product — identical to the generic backend.
//
//s2c2:noalloc
func gfDotVec(row, x []uint32) uint32 {
	n := len(row)
	x = x[:n]
	var acc uint64
	if nv := n &^ 7; nv > 0 {
		acc = gfDotMod31AVX2(&row[0], &x[0], nv)
	}
	for i := n &^ 7; i < n; i++ {
		acc += uint64(row[i]) * uint64(x[i]) // < 2³⁶ + 2⁶² < 2⁶³
		acc = (acc >> 31) + (acc & p31)      // < 2³³
	}
	acc = (acc >> 31) + (acc & p31) // < 2³¹ + 2⁵
	if acc >= p31 {
		acc -= p31
	}
	return uint32(acc)
}

//s2c2:noalloc
func gfMatVecVec(dst, a []uint32, cols int, x []uint32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = gfDotVec(a[i*cols:(i+1)*cols], x)
	}
}

// gfMatVecBatchVec walks each A row once across all w lanes: the row is
// hot in L1 for every lane past the first, so the A DRAM stream is
// amortized w ways.
//
//s2c2:noalloc
func gfMatVecBatchVec(dst, a []uint32, cols int, xs []uint32, w, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a[i*cols : (i+1)*cols]
		out := dst[(i-lo)*w : (i-lo+1)*w]
		for l := 0; l < w; l++ {
			out[l] = gfDotVec(row, xs[l*cols:(l+1)*cols])
		}
	}
}

// gfMatMulAccRangeVec accumulates rows [lo, hi) of A·B over the field into
// band-relative dst as k vectorized axpy sweeps per row. Sweep order is
// irrelevant to the result (modular reduction is order-independent), so
// this is exactly the generic backend's value with the 4-lane folded
// gfAxpy kernel doing the streaming.
//
//s2c2:noalloc
func gfMatMulAccRangeVec(dst, a []uint32, k int, b []uint32, n, lo, hi int) {
	if n == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		row := dst[(i-lo)*n : (i-lo+1)*n]
		for t := 0; t < k; t++ {
			c := a[i*k+t]
			if c == 0 {
				continue
			}
			gfAxpyVec(row, c, b[t*n:(t+1)*n])
		}
	}
}

//s2c2:noalloc
func gfAxpyVec(dst []uint32, c uint32, src []uint32) {
	src = src[:len(dst)]
	if nv := len(dst) &^ 7; nv > 0 {
		gfAxpyAVX2(&dst[0], c, &src[0], nv)
	}
	for i := len(dst) &^ 7; i < len(dst); i++ {
		dst[i] = gfMulAdd31(dst[i], c, src[i])
	}
}
