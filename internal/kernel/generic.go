package kernel

// The generic backend: portable scalar Go implementations of every
// dispatched micro-kernel. This is the reference semantics — vector
// backends are validated against it — and the only backend under the
// noasm build tag or on CPUs without the required ISA extensions.

var genericBackend = &backendImpl{
	name:             "generic",
	dot:              dotGeneric,
	axpy:             axpyGeneric,
	matVecRange:      matVecRangeGeneric,
	matVecRangeBatch: matVecRangeBatchGeneric,
	matMulAccRange:   matMulAccRangeGeneric,
	gfAxpy:           gfAxpyGeneric,
	gfMatVec:         gfMatVecGeneric,
	gfMatVecBatch:    gfMatVecBatchGeneric,
	gfMatMulAccRange: gfMatMulAccRangeGeneric,
	chunkFlops:       16 * 1024,
}

// dotGeneric uses four independent accumulators to expose instruction-level
// parallelism; the summation order therefore differs from a sequential
// loop by O(ε), but is fixed for this backend.
//
//s2c2:noalloc
func dotGeneric(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

//s2c2:noalloc
func axpyGeneric(a float64, x, y []float64) {
	x = x[:len(y)]
	for i, v := range x {
		y[i] += a * v
	}
}

//s2c2:noalloc
func matVecRangeGeneric(dst, a []float64, cols int, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = dotGeneric(a[i*cols:(i+1)*cols], x)
	}
}

// matVecRangeBatchGeneric serves all w lanes from one pass over each A
// row (the row stays cache-hot across lanes). Lane l of any row uses
// exactly dotGeneric's accumulation order, so a w-lane batch is
// bit-identical to w single-x sweeps on this backend.
//
//s2c2:noalloc
func matVecRangeBatchGeneric(dst, a []float64, cols int, xs []float64, w, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a[i*cols : (i+1)*cols]
		out := dst[(i-lo)*w : (i-lo+1)*w]
		for l := 0; l < w; l++ {
			out[l] = dotGeneric(row, xs[l*cols:(l+1)*cols])
		}
	}
}

// matMulAccRangeGeneric accumulates rows [lo, hi) of A·B into dst.
//
// Each kcBlock×ncBlock panel of B is packed once into contiguous 4-column
// tiles (GotoBLAS-style), so the 4×4 register micro-kernel streams both A
// and the packed panel sequentially. The pack buffer is pooled.
//
//s2c2:noalloc
func matMulAccRangeGeneric(dst, a []float64, k int, b []float64, n, lo, hi int) {
	if hi <= lo {
		return
	}
	buf := GetBuf(kcBlock * ncBlock)
	defer buf.Put()
	for kk := 0; kk < k; kk += kcBlock {
		kc := kcBlock
		if kk+kc > k {
			kc = k - kk
		}
		for jj := 0; jj < n; jj += ncBlock {
			nc := ncBlock
			if jj+nc > n {
				nc = n - jj
			}
			packPanel(buf.F, b, n, kk, kc, jj, nc)
			i := lo
			for ; i+mrRows <= hi; i += mrRows {
				mulPanel4(dst, a, buf.F, i, k, n, kk, kc, jj, nc)
			}
			for ; i < hi; i++ {
				mulPanel1(dst, a, buf.F, i, k, n, kk, kc, jj, nc)
			}
		}
	}
}

// packPanel copies the B panel rows [kk,kk+kc) × cols [jj,jj+nc) into dst
// as 4-column tiles, each tile stored kc×4 row-major. The final tile is
// zero-padded to width 4 so the micro-kernel needs no column masking.
func packPanel(dst, b []float64, n, kk, kc, jj, nc int) {
	tiles := (nc + nrCols - 1) / nrCols
	for t := 0; t < tiles; t++ {
		base := t * kc * nrCols
		j0 := jj + t*nrCols
		w := nc - t*nrCols
		if w >= nrCols {
			for kx := 0; kx < kc; kx++ {
				src := b[(kk+kx)*n+j0 : (kk+kx)*n+j0+4 : (kk+kx)*n+j0+4]
				d := dst[base+kx*4 : base+kx*4+4 : base+kx*4+4]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
			continue
		}
		for kx := 0; kx < kc; kx++ {
			d := dst[base+kx*4 : base+kx*4+4]
			for c := 0; c < nrCols; c++ {
				if c < w {
					d[c] = b[(kk+kx)*n+j0+c]
				} else {
					d[c] = 0
				}
			}
		}
	}
}

// mulPanel4 accumulates the (4 × [jj,jj+nc)) block of C rows i..i+3 from
// the packed B panel (kc rows). The 4×4 micro-kernel keeps its C block in
// sixteen register accumulators, so C is loaded and stored once per panel
// and both A and the packed panel stream sequentially.
func mulPanel4(c, a, packed []float64, i, k, n, kk, kc, jj, nc int) {
	a0 := a[i*k+kk : i*k+kk+kc]
	a1 := a[(i+1)*k+kk : (i+1)*k+kk+kc]
	a2 := a[(i+2)*k+kk : (i+2)*k+kk+kc]
	a3 := a[(i+3)*k+kk : (i+3)*k+kk+kc]
	tiles := (nc + nrCols - 1) / nrCols
	for t := 0; t < tiles; t++ {
		bt := packed[t*kc*4 : (t+1)*kc*4]
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		for kx := 0; kx < kc; kx++ {
			brow := bt[kx*4 : kx*4+4 : kx*4+4]
			b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
			av := a0[kx]
			c00 += av * b0
			c01 += av * b1
			c02 += av * b2
			c03 += av * b3
			av = a1[kx]
			c10 += av * b0
			c11 += av * b1
			c12 += av * b2
			c13 += av * b3
			av = a2[kx]
			c20 += av * b0
			c21 += av * b1
			c22 += av * b2
			c23 += av * b3
			av = a3[kx]
			c30 += av * b0
			c31 += av * b1
			c32 += av * b2
			c33 += av * b3
		}
		j := jj + t*nrCols
		w := nc - t*nrCols
		if w > nrCols {
			w = nrCols
		}
		store4(c[i*n+j:i*n+j+w], w, c00, c01, c02, c03)
		store4(c[(i+1)*n+j:(i+1)*n+j+w], w, c10, c11, c12, c13)
		store4(c[(i+2)*n+j:(i+2)*n+j+w], w, c20, c21, c22, c23)
		store4(c[(i+3)*n+j:(i+3)*n+j+w], w, c30, c31, c32, c33)
	}
}

// store4 accumulates up to four register values into a C row fragment.
func store4(dst []float64, w int, v0, v1, v2, v3 float64) {
	switch w {
	case 4:
		dst[0] += v0
		dst[1] += v1
		dst[2] += v2
		dst[3] += v3
	case 3:
		dst[0] += v0
		dst[1] += v1
		dst[2] += v2
	case 2:
		dst[0] += v0
		dst[1] += v1
	case 1:
		dst[0] += v0
	}
}

// mulPanel1 is the tail micro-kernel for a single C row over the packed
// panel: one row of register accumulators per 4-column tile. It must not
// skip zero A terms: mulPanel4 accumulates them, and a row's result has
// to be identical whichever micro-kernel a band boundary routes it to
// (0·Inf produces NaN in both or neither).
func mulPanel1(c, a, packed []float64, i, k, n, kk, kc, jj, nc int) {
	a0 := a[i*k+kk : i*k+kk+kc]
	tiles := (nc + nrCols - 1) / nrCols
	for t := 0; t < tiles; t++ {
		bt := packed[t*kc*4 : (t+1)*kc*4]
		var c0, c1, c2, c3 float64
		for kx := 0; kx < kc; kx++ {
			av := a0[kx]
			brow := bt[kx*4 : kx*4+4 : kx*4+4]
			c0 += av * brow[0]
			c1 += av * brow[1]
			c2 += av * brow[2]
			c3 += av * brow[3]
		}
		j := jj + t*nrCols
		w := nc - t*nrCols
		if w > nrCols {
			w = nrCols
		}
		store4(c[i*n+j:i*n+j+w], w, c0, c1, c2, c3)
	}
}

// p31 is the Mersenne prime 2³¹−1, kernel-side copy of gf.P (package gf
// routes its hot loop here; kernel cannot import it back).
const p31 = 1<<31 - 1

// gfMulAdd31 returns d + c·s mod 2³¹−1 using Mersenne folding instead of a
// hardware divide: for x < 2⁶³, x ≡ (x >> 31) + (x & p31) (mod p31), and
// two folds bring any d + c·s product into [0, p31+3], leaving one
// conditional subtract.
func gfMulAdd31(d, c, s uint32) uint32 {
	x := uint64(d) + uint64(c)*uint64(s) // < 2³¹ + (p31−1)² < 2⁶³
	x = (x >> 31) + (x & p31)            // < 2³³
	x = (x >> 31) + (x & p31)            // < p31 + 4
	if x >= p31 {
		x -= p31
	}
	return uint32(x)
}

// gfDotGeneric returns the canonical inner product of row and x over
// GF(2³¹−1), folding after every accumulate: the running sum stays below
// 2³³, so the next 62-bit product cannot overflow the 64-bit accumulator.
// Modular reduction is order- and grouping-independent, so every backend's
// gfMatVec returns these exact values.
//
//s2c2:noalloc
func gfDotGeneric(row, x []uint32) uint32 {
	x = x[:len(row)]
	var acc uint64
	for j, v := range row {
		acc += uint64(v) * uint64(x[j]) // < 2³³ + 2⁶² < 2⁶³
		acc = (acc >> 31) + (acc & p31) // < 2³³
	}
	acc = (acc >> 31) + (acc & p31) // < p31 + 4
	if acc >= p31 {
		acc -= p31
	}
	return uint32(acc)
}

//s2c2:noalloc
func gfMatVecGeneric(dst, a []uint32, cols int, x []uint32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = gfDotGeneric(a[i*cols:(i+1)*cols], x)
	}
}

//s2c2:noalloc
func gfMatVecBatchGeneric(dst, a []uint32, cols int, xs []uint32, w, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a[i*cols : (i+1)*cols]
		out := dst[(i-lo)*w : (i-lo+1)*w]
		for l := 0; l < w; l++ {
			out[l] = gfDotGeneric(row, xs[l*cols:(l+1)*cols])
		}
	}
}

// gfMatMulAccRangeGeneric accumulates rows [lo, hi) of A·B over the field
// into band-relative dst as k axpy sweeps per row: dst_row += A[i,t]·B_t.
// Each sweep lands fully reduced values, so the reduced-inputs invariant
// of gfMulAdd31 holds at every step, and modular reduction being
// order-independent makes the result exactly Σ_t A[i,t]·B[t,j] mod p on
// every backend regardless of sweep order.
//
//s2c2:noalloc
func gfMatMulAccRangeGeneric(dst, a []uint32, k int, b []uint32, n, lo, hi int) {
	if n == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		row := dst[(i-lo)*n : (i-lo+1)*n]
		for t := 0; t < k; t++ {
			c := a[i*k+t]
			if c == 0 {
				continue
			}
			gfAxpyGeneric(row, c, b[t*n:(t+1)*n])
		}
	}
}

// gfAxpyGeneric is the scalar Mersenne-folded mul-accumulate, unrolled
// over four independent lanes.
//
//s2c2:noalloc
func gfAxpyGeneric(dst []uint32, c uint32, src []uint32) {
	src = src[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d0 := gfMulAdd31(dst[i], c, src[i])
		d1 := gfMulAdd31(dst[i+1], c, src[i+1])
		d2 := gfMulAdd31(dst[i+2], c, src[i+2])
		d3 := gfMulAdd31(dst[i+3], c, src[i+3])
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		dst[i] = gfMulAdd31(dst[i], c, src[i])
	}
}
