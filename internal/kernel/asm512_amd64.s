//go:build amd64 && !noasm

#include "textflag.h"

// AVX-512 micro-kernels. Operand order follows Go assembler convention
// (destination last, reversed from Intel syntax): VFMADD231PD s3, s2, d
// computes d += s2 * s3; the .BCST suffix broadcasts a 64-bit memory
// operand across the vector lanes; "op ..., K1, dst" merge-masks dst by
// opmask K1, suppressing loads, stores and faults on masked-off lanes.
//
// Every kernel uses a fixed accumulation order, so results are
// bit-identical run to run. Vector-length wrappers in avx512_amd64.go
// handle sub-8 tails in Go; the mat-mul tile kernels instead take an
// explicit 8-bit column mask, so partial C tiles are written with masked
// stores rather than through zero-padded scratch tiles.

// GF(2³¹−1) constants, broadcast to all qword lanes via VPBROADCASTQ:
// the prime for the Mersenne fold mask, p−1 for the final conditional
// subtract. (The <> symbols in asm_amd64.s are file-local, hence the
// separate copies.)
DATA gfP31q<>+0(SB)/8, $0x7FFFFFFF
GLOBL gfP31q<>(SB), RODATA|NOPTR, $8

DATA gfP31m1q<>+0(SB)/8, $0x7FFFFFFE
GLOBL gfP31m1q<>(SB), RODATA|NOPTR, $8

// func dotAVX512(x, y *float64, n int) float64
//
// Four independent ZMM accumulators (32 elements per step), reduced
// pairwise then across lanes. n must be a multiple of 8; the 8-element
// blocks beyond the 32s drain through the first accumulator.
TEXT ·dotAVX512(SB), NOSPLIT, $0-32
	MOVQ   x+0(FP), SI
	MOVQ   y+8(FP), DI
	MOVQ   n+16(FP), CX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	MOVQ   CX, BX
	SHRQ   $5, BX
	JZ     dot512_tail

dot512_loop32:
	VMOVUPD     (SI), Z4
	VMOVUPD     64(SI), Z5
	VMOVUPD     128(SI), Z6
	VMOVUPD     192(SI), Z7
	VFMADD231PD (DI), Z4, Z0
	VFMADD231PD 64(DI), Z5, Z1
	VFMADD231PD 128(DI), Z6, Z2
	VFMADD231PD 192(DI), Z7, Z3
	ADDQ        $256, SI
	ADDQ        $256, DI
	DECQ        BX
	JNZ         dot512_loop32

dot512_tail:
	ANDQ $24, CX
	JZ   dot512_reduce

dot512_tail8:
	VMOVUPD     (SI), Z4
	VFMADD231PD (DI), Z4, Z0
	ADDQ        $64, SI
	ADDQ        $64, DI
	SUBQ        $8, CX
	JNZ         dot512_tail8

dot512_reduce:
	VADDPD        Z1, Z0, Z0
	VADDPD        Z3, Z2, Z2
	VADDPD        Z2, Z0, Z0
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPD        Y1, Y0, Y0
	VEXTRACTF128  $1, Y0, X1
	VADDPD        X1, X0, X0
	VUNPCKHPD     X0, X0, X1
	VADDSD        X1, X0, X0
	VMOVSD        X0, ret+24(FP)
	VZEROUPPER
	RET

// func axpyAVX512(a float64, x, y *float64, n int)
//
// y += a*x over two ZMM lanes per iteration (fused multiply-add, one
// rounding per element — elementwise, so banding at any offset is
// bit-identical). n must be a multiple of 8.
TEXT ·axpyAVX512(SB), NOSPLIT, $0-32
	VBROADCASTSD a+0(FP), Z0
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), DI
	MOVQ         n+24(FP), CX
	MOVQ         CX, BX
	SHRQ         $4, BX
	JZ           axpy512_tail8

axpy512_loop16:
	VMOVUPD     (DI), Z1
	VMOVUPD     64(DI), Z2
	VFMADD231PD (SI), Z0, Z1
	VFMADD231PD 64(SI), Z0, Z2
	VMOVUPD     Z1, (DI)
	VMOVUPD     Z2, 64(DI)
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        BX
	JNZ         axpy512_loop16

axpy512_tail8:
	TESTQ       $8, CX
	JZ          axpy512_done
	VMOVUPD     (DI), Z1
	VFMADD231PD (SI), Z0, Z1
	VMOVUPD     Z1, (DI)

axpy512_done:
	VZEROUPPER
	RET

// func mulTile8x8AVX512(c *float64, stride int, a *float64, lda int, bt *float64, kc int, mask uint64)
//
// The 8×8 register micro-kernel: eight ZMM accumulators hold the C tile
// across the whole kc sweep, one per C row; each k step is one B tile
// load plus eight broadcast-FMAs straight from the A rows (embedded
// .BCST operands, rows addressed through three base pointers at strides
// {0,1,2,4}, {3,5,7} and {6}·lda). C rows are accumulated and stored
// once under the column opmask, so partial tiles at the matrix edge
// never touch memory past the row end.
TEXT ·mulTile8x8AVX512(SB), NOSPLIT, $0-56
	MOVQ   a+16(FP), SI
	MOVQ   lda+24(FP), BX
	SHLQ   $3, BX
	LEAQ   (SI)(BX*2), R8
	ADDQ   BX, R8              // R8 = a + 3*lda
	LEAQ   (R8)(BX*2), R9
	ADDQ   BX, R9              // R9 = a + 6*lda
	MOVQ   bt+32(FP), R10
	MOVQ   kc+40(FP), CX
	MOVQ   mask+48(FP), AX
	KMOVW  AX, K1
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	TESTQ  CX, CX
	JZ     tile8_store

tile8_loop:
	VMOVUPD          (R10), Z8
	VFMADD231PD.BCST (SI), Z8, Z0
	VFMADD231PD.BCST (SI)(BX*1), Z8, Z1
	VFMADD231PD.BCST (SI)(BX*2), Z8, Z2
	VFMADD231PD.BCST (R8), Z8, Z3
	VFMADD231PD.BCST (SI)(BX*4), Z8, Z4
	VFMADD231PD.BCST (R8)(BX*2), Z8, Z5
	VFMADD231PD.BCST (R9), Z8, Z6
	VFMADD231PD.BCST (R8)(BX*4), Z8, Z7
	ADDQ             $64, R10
	ADDQ             $8, SI
	ADDQ             $8, R8
	ADDQ             $8, R9
	DECQ             CX
	JNZ              tile8_loop

tile8_store:
	MOVQ    c+0(FP), AX
	MOVQ    stride+8(FP), DX
	SHLQ    $3, DX
	VADDPD  (AX), Z0, K1, Z0
	VMOVUPD Z0, K1, (AX)
	ADDQ    DX, AX
	VADDPD  (AX), Z1, K1, Z1
	VMOVUPD Z1, K1, (AX)
	ADDQ    DX, AX
	VADDPD  (AX), Z2, K1, Z2
	VMOVUPD Z2, K1, (AX)
	ADDQ    DX, AX
	VADDPD  (AX), Z3, K1, Z3
	VMOVUPD Z3, K1, (AX)
	ADDQ    DX, AX
	VADDPD  (AX), Z4, K1, Z4
	VMOVUPD Z4, K1, (AX)
	ADDQ    DX, AX
	VADDPD  (AX), Z5, K1, Z5
	VMOVUPD Z5, K1, (AX)
	ADDQ    DX, AX
	VADDPD  (AX), Z6, K1, Z6
	VMOVUPD Z6, K1, (AX)
	ADDQ    DX, AX
	VADDPD  (AX), Z7, K1, Z7
	VMOVUPD Z7, K1, (AX)
	VZEROUPPER
	RET

// func mulTile1x8AVX512(c, a0, bt *float64, kc int, mask uint64)
//
// Single-row tail of the 8×8 micro-kernel: one ZMM accumulator, same
// per-row FMA chain as mulTile8x8AVX512 (rows are independent there), so
// a row's result is identical whichever kernel a band boundary routes it
// to.
TEXT ·mulTile1x8AVX512(SB), NOSPLIT, $0-40
	MOVQ   a0+8(FP), SI
	MOVQ   bt+16(FP), R10
	MOVQ   kc+24(FP), CX
	MOVQ   mask+32(FP), AX
	KMOVW  AX, K1
	VPXORQ Z0, Z0, Z0
	TESTQ  CX, CX
	JZ     tile1x8_store

tile1x8_loop:
	VMOVUPD          (R10), Z8
	VFMADD231PD.BCST (SI), Z8, Z0
	ADDQ             $64, R10
	ADDQ             $8, SI
	DECQ             CX
	JNZ              tile1x8_loop

tile1x8_store:
	MOVQ    c+0(FP), AX
	VADDPD  (AX), Z0, K1, Z0
	VMOVUPD Z0, K1, (AX)
	VZEROUPPER
	RET

// func gfDotMod31AVX512(a, x *uint32, n int) uint64
//
// Partially folded inner product over GF(2³¹−1): sixteen elements per
// iteration as two 8-lane 64-bit accumulator chains (widen with
// VPMOVZXDQ, VPMULUDQ into 62-bit products, add, one Mersenne fold
// x → (x>>31) + (x&p) keeps each lane below 2³³). The sixteen lanes are
// summed horizontally at the end (< 2³⁷) and returned still unreduced —
// the Go wrapper finishes the reduction. n must be a multiple of 8.
TEXT ·gfDotMod31AVX512(SB), NOSPLIT, $0-32
	MOVQ         a+0(FP), SI
	MOVQ         x+8(FP), DI
	MOVQ         n+16(FP), CX
	VPXORQ       Z0, Z0, Z0
	VPXORQ       Z4, Z4, Z4
	VPBROADCASTQ gfP31q<>(SB), Z12
	MOVQ         CX, BX
	SHRQ         $4, BX
	JZ           gfdot512_tail8

gfdot512_loop16:
	VPMOVZXDQ (SI), Z1
	VPMOVZXDQ 32(SI), Z5
	VPMOVZXDQ (DI), Z2
	VPMOVZXDQ 32(DI), Z6
	VPMULUDQ  Z2, Z1, Z1
	VPMULUDQ  Z6, Z5, Z5
	VPADDQ    Z1, Z0, Z0
	VPADDQ    Z5, Z4, Z4

	// fold: acc = (acc >> 31) + (acc & p), each lane back below 2³³
	VPSRLQ $31, Z0, Z1
	VPSRLQ $31, Z4, Z5
	VPANDQ Z12, Z0, Z0
	VPANDQ Z12, Z4, Z4
	VPADDQ Z1, Z0, Z0
	VPADDQ Z5, Z4, Z4

	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  gfdot512_loop16

gfdot512_tail8:
	TESTQ     $8, CX
	JZ        gfdot512_reduce
	VPMOVZXDQ (SI), Z1
	VPMOVZXDQ (DI), Z2
	VPMULUDQ  Z2, Z1, Z1
	VPADDQ    Z1, Z0, Z0
	VPSRLQ    $31, Z0, Z1
	VPANDQ    Z12, Z0, Z0
	VPADDQ    Z1, Z0, Z0

gfdot512_reduce:
	VPADDQ        Z4, Z0, Z0
	VEXTRACTI64X4 $1, Z0, Y1
	VPADDQ        Y1, Y0, Y0
	VEXTRACTI128  $1, Y0, X1
	VPADDQ        X1, X0, X0
	VPSRLDQ       $8, X0, X1
	VPADDQ        X1, X0, X0
	MOVQ          X0, AX
	MOVQ          AX, ret+24(FP)
	VZEROUPPER
	RET

// func gfAxpyAVX512(dst *uint32, c uint32, src *uint32, n int)
//
// dst[i] += c·src[i] mod 2³¹−1, sixteen elements per iteration as two
// interleaved 8-lane 64-bit chains: widen dwords to qwords, VPMULUDQ the
// 31-bit operands into 62-bit products, add dst, then two Mersenne folds
// and one opmasked subtract bring each lane into [0, p); VPMOVQD narrows
// the qword lanes straight back to memory. Exact — same values as the
// scalar fold. n must be a multiple of 8.
TEXT ·gfAxpyAVX512(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVL         c+8(FP), AX
	MOVQ         src+16(FP), SI
	MOVQ         n+24(FP), CX
	VPBROADCASTQ AX, Z0
	VPBROADCASTQ gfP31q<>(SB), Z12
	VPBROADCASTQ gfP31m1q<>(SB), Z13
	MOVQ         CX, BX
	SHRQ         $4, BX
	JZ           gfaxpy512_tail8

gfaxpy512_loop16:
	VPMOVZXDQ (SI), Z1
	VPMOVZXDQ 32(SI), Z5
	VPMOVZXDQ (DI), Z2
	VPMOVZXDQ 32(DI), Z6
	VPMULUDQ  Z0, Z1, Z1
	VPMULUDQ  Z0, Z5, Z5
	VPADDQ    Z2, Z1, Z1
	VPADDQ    Z6, Z5, Z5

	// fold 1: x = (x >> 31) + (x & p)
	VPSRLQ $31, Z1, Z2
	VPSRLQ $31, Z5, Z6
	VPANDQ Z12, Z1, Z1
	VPANDQ Z12, Z5, Z5
	VPADDQ Z2, Z1, Z1
	VPADDQ Z6, Z5, Z5

	// fold 2
	VPSRLQ $31, Z1, Z2
	VPSRLQ $31, Z5, Z6
	VPANDQ Z12, Z1, Z1
	VPANDQ Z12, Z5, Z5
	VPADDQ Z2, Z1, Z1
	VPADDQ Z6, Z5, Z5

	// conditional subtract: x -= p when x > p-1
	VPCMPGTQ Z13, Z1, K2
	VPCMPGTQ Z13, Z5, K3
	VPSUBQ   Z12, Z1, K2, Z1
	VPSUBQ   Z12, Z5, K3, Z5

	// narrow qword lanes back to dwords and store
	VPMOVQD Z1, (DI)
	VPMOVQD Z5, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     gfaxpy512_loop16

gfaxpy512_tail8:
	TESTQ     $8, CX
	JZ        gfaxpy512_done
	VPMOVZXDQ (SI), Z1
	VPMOVZXDQ (DI), Z2
	VPMULUDQ  Z0, Z1, Z1
	VPADDQ    Z2, Z1, Z1
	VPSRLQ    $31, Z1, Z2
	VPANDQ    Z12, Z1, Z1
	VPADDQ    Z2, Z1, Z1
	VPSRLQ    $31, Z1, Z2
	VPANDQ    Z12, Z1, Z1
	VPADDQ    Z2, Z1, Z1
	VPCMPGTQ  Z13, Z1, K2
	VPSUBQ    Z12, Z1, K2, Z1
	VPMOVQD   Z1, (DI)

gfaxpy512_done:
	VZEROUPPER
	RET

// func gfMatMulRowAccAVX512(dst *uint32, a *uint32, k int, b *uint32, n int)
//
// One fused row of the exact mat-mul accumulate: for every 8-column
// block j of dst, widen dst[j..j+8) into a qword accumulator (opmasked
// at the row tail), then sweep all k terms — broadcast a[t], widen the
// masked B row slice b[t*n+j..), VPMULUDQ, add, one Mersenne fold —
// keeping the accumulator in registers across the whole k sweep instead
// of a load/reduce/store round trip per term. A final fold plus opmasked
// subtract lands in [0, p) and VPMOVQD stores through the same column
// mask. The accumulator obeys the standard invariant: dst < 2³¹ to
// start, < 2³³ after every fold, so adding the next 62-bit product
// cannot overflow 64 bits.
TEXT ·gfMatMulRowAccAVX512(SB), NOSPLIT, $0-40
	MOVQ         dst+0(FP), DI
	MOVQ         b+24(FP), R8
	MOVQ         n+32(FP), R9
	MOVQ         R9, R11
	SHLQ         $2, R11       // B row stride in bytes
	VPBROADCASTQ gfP31q<>(SB), Z14
	VPBROADCASTQ gfP31m1q<>(SB), Z13
	XORQ         R10, R10      // j = 0

gfmm_jloop:
	// column mask for this block: 0xFF, or (1<<w)-1 at the row tail
	MOVQ  R9, DX
	SUBQ  R10, DX
	MOVQ  $0xFF, AX
	CMPQ  DX, $8
	JGE   gfmm_maskdone
	MOVQ  $1, AX
	MOVQ  DX, CX
	SHLQ  CX, AX
	DECQ  AX

gfmm_maskdone:
	KMOVW       AX, K1
	LEAQ        (DI)(R10*4), R13
	VPMOVZXDQ.Z (R13), K1, Z0
	MOVQ        a+8(FP), SI
	LEAQ        (R8)(R10*4), R12
	MOVQ        k+16(FP), CX
	TESTQ       CX, CX
	JZ          gfmm_store

gfmm_tloop:
	VPBROADCASTD (SI), Z1
	VPMOVZXDQ.Z  (R12), K1, Z2
	VPMULUDQ     Z2, Z1, Z2
	VPADDQ       Z2, Z0, Z0
	VPSRLQ       $31, Z0, Z3
	VPANDQ       Z14, Z0, Z0
	VPADDQ       Z3, Z0, Z0
	ADDQ         $4, SI
	ADDQ         R11, R12
	DECQ         CX
	JNZ          gfmm_tloop

	// final reduction: one more fold + conditional subtract
	VPSRLQ   $31, Z0, Z3
	VPANDQ   Z14, Z0, Z0
	VPADDQ   Z3, Z0, Z0
	VPCMPGTQ Z13, Z0, K2
	VPSUBQ   Z14, Z0, K2, Z0

gfmm_store:
	VPMOVQD Z0, K1, (R13)
	ADDQ    $8, R10
	CMPQ    R10, R9
	JL      gfmm_jloop
	VZEROUPPER
	RET
