//go:build !amd64 || noasm

package kernel

// archBackends reports no vector backends: either this is not amd64 or
// the noasm build tag forced the portable path.
func archBackends() []*backendImpl { return nil }
