package kernel

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// A backendImpl bundles one implementation of every dispatched micro-kernel.
// The generic (portable Go) backend is the reference; vector backends must
// agree with it exactly for GF(2³¹−1) arithmetic and within accumulated
// rounding tolerance for float64 (each backend is individually
// deterministic: a fixed accumulation order, bit-identical run to run).
//
// s2c2-vet (backendpair) enforces the pairing mechanically: every literal
// of this struct must assign every kernel field in keyed form, every
// assembly stub must be reachable from some field, each field needs a
// cross-backend equivalence test, and -tags noasm must not change the
// package's exported API.
//
//s2c2:backend-contract
type backendImpl struct {
	name string

	dot  func(x, y []float64) float64
	axpy func(a float64, x, y []float64) // caller has rejected a == 0

	// matVecRange computes dst[i-lo] = (A·x)[i] for i in [lo, hi).
	matVecRange func(dst, a []float64, cols int, x []float64, lo, hi int)

	// matVecRangeBatch computes dst[(i-lo)*w+l] = (A·x_l)[i] for i in
	// [lo, hi), l in [0, w): one sweep of A serving w x-vectors. xs holds
	// the vectors concatenated (x_l at xs[l*cols : (l+1)*cols]); dst is
	// row-major w-wide.
	matVecRangeBatch func(dst, a []float64, cols int, xs []float64, w, lo, hi int)

	// matMulAccRange accumulates rows [lo, hi) of A·B into dst.
	matMulAccRange func(dst, a []float64, k int, b []float64, n, lo, hi int)

	// gfAxpy computes dst[i] ← dst[i] + c·src[i] mod 2³¹−1 (exact; inputs
	// fully reduced, c != 0, lengths equal).
	gfAxpy func(dst []uint32, c uint32, src []uint32)

	// gfMatVec computes dst[i-lo] = (A·x)[i] over GF(2³¹−1) for i in
	// [lo, hi), the dot-lane kernel behind gf.Matrix.MulVecRangeInto.
	// Exact on every backend.
	gfMatVec func(dst, a []uint32, cols int, x []uint32, lo, hi int)

	// gfMatVecBatch is gfMatVec over w concatenated x-vectors with
	// row-major w-wide output, mirroring matVecRangeBatch.
	gfMatVecBatch func(dst, a []uint32, cols int, xs []uint32, w, lo, hi int)

	// gfMatMulAccRange accumulates rows [lo, hi) of A·B over GF(2³¹−1)
	// into dst, band-relative: dst[(i-lo)*n+j] += Σ_t A[i,t]·B[t,j]
	// (unlike the float64 matMulAccRange's absolute dst indexing — the
	// decode solves it backs write compact per-band outputs). Inputs
	// fully reduced; exact on every backend.
	gfMatMulAccRange func(dst, a []uint32, k int, b []uint32, n, lo, hi int)

	// chunkFlops is the per-chunk flop target the pool sizes row chunks
	// for: wider backends retire flops faster, so they want bigger chunks.
	chunkFlops int
}

// BackendEnv is the environment variable consulted once at init to force a
// kernel backend (e.g. S2C2_KERNEL_BACKEND=generic). Unknown names are
// ignored and the best available backend stays selected; ActiveBackend
// reports what actually runs.
const BackendEnv = "S2C2_KERNEL_BACKEND"

// allBackends lists every backend compiled into this binary and usable on
// this CPU, generic first. archBackends is supplied per GOARCH (and is
// empty under the noasm build tag).
var allBackends = append([]*backendImpl{genericBackend}, archBackends()...)

// active is the backend every dispatched kernel routes through. It is set
// during package init and only changes via SetBackend.
var active atomic.Pointer[backendImpl]

func init() {
	b := allBackends[len(allBackends)-1] // best available: vector if present
	if env := os.Getenv(BackendEnv); env != "" {
		for _, cand := range allBackends {
			if strings.EqualFold(cand.name, env) {
				b = cand
			}
		}
	}
	active.Store(b)
}

// ActiveBackend reports the name of the backend the dispatched kernels are
// currently routed through ("generic", "avx2", ...). It is the hook CI and
// the bench harness use to assert which path ran.
func ActiveBackend() string { return active.Load().name }

// Backends lists the names of every backend available in this process,
// sorted, generic always included. Vector backends appear only when the
// binary was built with them (no noasm tag) and the CPU supports them.
func Backends() []string {
	names := make([]string, len(allBackends))
	for i, b := range allBackends {
		names[i] = b.name
	}
	sort.Strings(names)
	return names
}

// ChunkRows sizes a parallel-loop row chunk for the active backend: the
// row count whose total cost (rowFlops flops per row) meets the backend's
// per-chunk flop target. Vector backends retire flops faster, so they get
// bigger chunks; callers banding kernel loops over a pool should use this
// instead of a hardcoded flop budget. Always at least 1.
//
//s2c2:noalloc
func ChunkRows(rowFlops int) int {
	if rowFlops < 1 {
		rowFlops = 1
	}
	c := active.Load().chunkFlops / rowFlops
	if c < 1 {
		c = 1
	}
	return c
}

// SetBackend routes all subsequent dispatched kernel calls through the
// named backend. It is intended for tests and benchmarks comparing
// backends; the swap is atomic, but operations already in flight finish on
// the backend they started with.
func SetBackend(name string) error {
	for _, b := range allBackends {
		if strings.EqualFold(b.name, name) {
			active.Store(b)
			return nil
		}
	}
	return fmt.Errorf("kernel: unknown backend %q (available: %s)",
		name, strings.Join(Backends(), ", "))
}
