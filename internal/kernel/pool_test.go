package kernel

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestPoolMatVecMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := NewPool(4)
	for _, rows := range []int{0, 1, 3, 64, 257, 1000} {
		cols := 65
		a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
		want := make([]float64, rows)
		MatVec(want, a, rows, cols, x)
		got := make([]float64, rows)
		p.MatVec(got, a, rows, cols, x, 0)
		if maxAbsDiff(got, want) > 1e-12 {
			t.Fatalf("rows=%d: pool MatVec mismatch", rows)
		}
	}
}

func TestPoolMatVecFanLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPool(8)
	rows, cols := 500, 100
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	want := make([]float64, rows)
	MatVec(want, a, rows, cols, x)
	for _, fan := range []int{1, 2, 100} {
		got := make([]float64, rows)
		p.MatVec(got, a, rows, cols, x, fan)
		if maxAbsDiff(got, want) > 1e-12 {
			t.Fatalf("fan=%d: mismatch", fan)
		}
	}
}

func TestPoolMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := NewPool(3)
	for _, s := range [][3]int{{1, 1, 1}, {5, 7, 3}, {100, 64, 50}, {129, 65, 127}} {
		m, k, n := s[0], s[1], s[2]
		a, b := randSlice(m*k, rng), randSlice(k*n, rng)
		want := make([]float64, m*n)
		MatMul(want, a, m, k, b, n)
		got := make([]float64, m*n)
		p.MatMul(got, a, m, k, b, n, 0)
		if maxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("%v: pool MatMul mismatch", s)
		}
	}
}

func TestPoolForCoversRange(t *testing.T) {
	p := NewPool(4)
	for _, total := range []int{0, 1, 7, 100, 1023} {
		var mu sync.Mutex
		seen := make([]bool, total)
		p.For(total, 8, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				if seen[i] {
					panic("row visited twice")
				}
				seen[i] = true
			}
		})
		for i, ok := range seen {
			if !ok {
				t.Fatalf("total=%d: row %d never visited", total, i)
			}
		}
	}
}

func TestPoolConcurrentNestedDispatchDoesNotDeadlock(t *testing.T) {
	// Regression: with a pool of 2, two goroutines each dispatching a job
	// whose chunks dispatch again used to park every worker in a nested
	// completion wait that only another parked worker could satisfy. The
	// help-first wait must drain those inner jobs instead of blocking.
	p := NewPool(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for iter := 0; iter < 50; iter++ {
					p.For(2, 1, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							p.For(4, 1, func(int, int) {})
						}
					})
				}
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent nested dispatch deadlocked")
	}
}

func TestPoolNestedDispatchDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	rng := rand.New(rand.NewSource(13))
	rows, cols := 300, 80
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	want := make([]float64, rows)
	MatVec(want, a, rows, cols, x)
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.For(4, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got := make([]float64, rows)
				p.MatVec(got, a, rows, cols, x, 0) // nested: must not deadlock
				if maxAbsDiff(got, want) > 1e-12 {
					panic("nested MatVec mismatch")
				}
			}
		})
	}()
	<-done
}

func TestPoolDispatchZeroAllocSteadyState(t *testing.T) {
	p := NewPool(2)
	rng := rand.New(rand.NewSource(14))
	rows, cols := 512, 64
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	dst := make([]float64, rows)
	// Warm the job pool.
	for i := 0; i < 8; i++ {
		p.MatVec(dst, a, rows, cols, x, 0)
	}
	allocs := testing.AllocsPerRun(100, func() {
		p.MatVec(dst, a, rows, cols, x, 0)
	})
	if allocs != 0 {
		t.Fatalf("pooled MatVec allocates %v/op in steady state, want 0", allocs)
	}
}

func TestPoolCloseStopsWorkers(t *testing.T) {
	p := NewPool(3)
	rng := rand.New(rand.NewSource(15))
	rows, cols := 200, 90
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	dst := make([]float64, rows)
	p.MatVec(dst, a, rows, cols, x, 0)
	before := runtime.NumGoroutine()
	p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before-3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before-3 {
		t.Fatalf("worker goroutines did not exit after Close: %d -> %d", before, got)
	}
}

func TestWorkspaceBufReuse(t *testing.T) {
	b := GetBuf(100)
	if len(b.F) != 100 {
		t.Fatalf("len=%d", len(b.F))
	}
	b.F[0] = 42
	b.Put()
	c := GetBufZeroed(100)
	if len(c.F) != 100 || c.F[0] != 0 {
		t.Fatal("GetBufZeroed returned dirty buffer")
	}
	c.Put()
	// Oversize requests fall through to plain allocation but still work.
	big := GetBuf(1<<maxClass + 1)
	if len(big.F) != 1<<maxClass+1 {
		t.Fatal("oversize GetBuf wrong length")
	}
	big.Put()
}

func TestGrowHelpers(t *testing.T) {
	s := Grow(nil, 10)
	if len(s) != 10 {
		t.Fatalf("Grow(nil) len=%d", len(s))
	}
	s[3] = 7
	s2 := Grow(s[:0], 5)
	if &s2[0] != &s[0] {
		t.Fatal("Grow reallocated despite sufficient capacity")
	}
	z := GrowZeroed(s, 10)
	if z[3] != 0 {
		t.Fatal("GrowZeroed left dirty data")
	}
	ints := GrowInts(nil, 4)
	ints = GrowInts(ints, 2)
	if len(ints) != 2 {
		t.Fatal("GrowInts wrong length")
	}
}
