package kernel

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Backend seam tests: selection/override mechanics, cross-backend
// equivalence (vector kernels vs. the generic reference — within
// accumulated rounding for float64, exactly for GF), NaN/Inf passthrough,
// and the gated vector-speedup acceptance tests.

// withBackend runs fn on the named backend and restores the previous one.
func withBackend(t testing.TB, name string, fn func()) {
	t.Helper()
	prev := ActiveBackend()
	if err := SetBackend(name); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetBackend(prev); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

// vectorBackendNames lists the non-generic backends compiled in and
// runnable on this CPU.
func vectorBackendNames() []string {
	var out []string
	for _, name := range Backends() {
		if name != "generic" {
			out = append(out, name)
		}
	}
	return out
}

func TestBackendSelectionObservable(t *testing.T) {
	names := Backends()
	t.Logf("kernel backends: available=%v active=%s", names, ActiveBackend())
	found := false
	for _, n := range names {
		if n == ActiveBackend() {
			found = true
		}
	}
	if !found {
		t.Fatalf("active backend %q not in Backends() %v", ActiveBackend(), names)
	}
	if err := SetBackend("no-such-backend"); err == nil {
		t.Fatal("SetBackend with an unknown name must fail")
	}
	prev := ActiveBackend()
	for _, n := range names {
		if err := SetBackend(n); err != nil {
			t.Fatalf("SetBackend(%q): %v", n, err)
		}
		if ActiveBackend() != n {
			t.Fatalf("ActiveBackend() = %q after SetBackend(%q)", ActiveBackend(), n)
		}
	}
	if err := SetBackend(prev); err != nil {
		t.Fatal(err)
	}
}

// dotRef is the plain sequential inner product every backend's Dot must
// approximate (backends reorder the summation, so comparison is within
// accumulated rounding).
func dotRef(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func TestDotBackendsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	lengths := []int{0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1001}
	for _, n := range lengths {
		x, y := randSlice(n, rng), randSlice(n, rng)
		want := dotRef(x, y)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := Dot(x, y)
				if math.Abs(got-want) > 1e-12*float64(n+1) {
					t.Errorf("backend=%s n=%d: Dot=%v ref=%v", backend, n, got, want)
				}
			})
		}
	}
}

func TestAxpyBackendsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{0, 1, 3, 4, 7, 8, 9, 15, 16, 17, 33, 100, 257} {
		for _, a := range []float64{0, 1, -0.5, 3.25} {
			x, y0 := randSlice(n, rng), randSlice(n, rng)
			want := make([]float64, n)
			for i := range want {
				want[i] = y0[i] + a*x[i]
			}
			for _, backend := range Backends() {
				withBackend(t, backend, func() {
					y := append([]float64(nil), y0...)
					Axpy(a, x, y)
					for i := range y {
						if math.Abs(y[i]-want[i]) > 1e-12 {
							t.Errorf("backend=%s n=%d a=%v i=%d: %v want %v", backend, n, a, i, y[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestAxpyBackendsBandInvariant pins the determinism contract banded
// callers rely on: splitting one Axpy into arbitrary sub-slices must be
// bit-identical to the unbanded call on the same backend (parallel encode
// compares band-parallel against serial results exactly).
func TestAxpyBackendsBandInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const n = 103
	x, y0 := randSlice(n, rng), randSlice(n, rng)
	for _, backend := range Backends() {
		withBackend(t, backend, func() {
			whole := append([]float64(nil), y0...)
			Axpy(1.75, x, whole)
			for _, cut := range []int{1, 5, 8, 51, 96, 102} {
				banded := append([]float64(nil), y0...)
				Axpy(1.75, x[:cut], banded[:cut])
				Axpy(1.75, x[cut:], banded[cut:])
				for i := range banded {
					if banded[i] != whole[i] {
						t.Fatalf("backend=%s cut=%d i=%d: banded %v != whole %v (must be bit-identical)",
							backend, cut, i, banded[i], whole[i])
					}
				}
			}
		})
	}
}

func TestMatVecBackendsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	shapes := [][2]int{{1, 1}, {3, 7}, {4, 8}, {5, 9}, {7, 15}, {8, 16}, {9, 17}, {13, 31}, {16, 33}, {33, 129}, {5, 1000}}
	for _, s := range shapes {
		rows, cols := s[0], s[1]
		a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
		want := make([]float64, rows)
		for i := 0; i < rows; i++ {
			want[i] = dotRef(a[i*cols:(i+1)*cols], x)
		}
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := make([]float64, rows)
				MatVec(got, a, rows, cols, x)
				if d := maxAbsDiff(got, want); d > 1e-11 {
					t.Errorf("backend=%s %dx%d: MatVec max diff %g", backend, rows, cols, d)
				}
				// Row ranges must agree with the full product on every backend.
				if rows > 2 {
					part := make([]float64, rows-2)
					MatVecRange(part, a, cols, x, 1, rows-1)
					if d := maxAbsDiff(part, got[1:rows-1]); d != 0 {
						t.Errorf("backend=%s %dx%d: MatVecRange differs from full rows by %g", backend, rows, cols, d)
					}
				}
			})
		}
	}
}

func TestMatMulBackendsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	// Shapes straddling micro-kernel row tails (m % 4), vector column
	// tails (n % 8), pack-panel edges, and degenerate dims.
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 5}, {4, 4, 4}, {4, 8, 8}, {5, 3, 2}, {5, 9, 7},
		{3, 200, 300}, {12, 13, 17}, {33, 40, 27}, {64, 64, 64},
		{65, 129, 257}, {130, 128, 256}, {0, 4, 4}, {4, 0, 4}, {4, 4, 0},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randSlice(m*k, rng), randSlice(k*n, rng)
		want := make([]float64, m*n)
		naiveMatMul(want, a, m, k, b, n)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := make([]float64, m*n)
				MatMul(got, a, m, k, b, n)
				if d := maxAbsDiff(got, want); d > 1e-9*float64(k+1) {
					t.Errorf("backend=%s %dx%dx%d: MatMul max diff %g", backend, m, k, n, d)
				}
				// Accumulation semantics: dst += A·B on a preloaded dst.
				if m*n > 0 {
					acc := randSlice(m*n, rng)
					accWant := make([]float64, m*n)
					for i := range accWant {
						accWant[i] = acc[i] + want[i]
					}
					MatMulAccRange(acc, a, m, k, b, n, 0, m)
					if d := maxAbsDiff(acc, accWant); d > 1e-9*float64(k+1) {
						t.Errorf("backend=%s %dx%dx%d: MatMulAccRange max diff %g", backend, m, k, n, d)
					}
				}
			})
		}
	}
}

func TestDotNaNInfPassthroughBackends(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		x, y []float64
	}{
		{"nan-in-x", []float64{1, 2, nan, 4, 5, 6, 7, 8, 9}, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{"nan-in-tail", []float64{1, 2, 3, 4, 5, 6, 7, 8, nan}, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{"pos-inf", []float64{1, inf, 3, 4, 5, 6, 7, 8}, []float64{1, 1, 1, 1, 1, 1, 1, 1}},
		{"inf-minus-inf", []float64{inf, -inf, 3, 4, 5, 6, 7, 8}, []float64{1, 1, 1, 1, 1, 1, 1, 1}},
		{"neg-inf-tail", []float64{1, 2, 3, 4, 5, 6, 7, 8, -inf}, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		want := dotRef(tc.x, tc.y)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := Dot(tc.x, tc.y)
				switch {
				case math.IsNaN(want):
					if !math.IsNaN(got) {
						t.Errorf("backend=%s %s: Dot=%v want NaN", backend, tc.name, got)
					}
				case math.IsInf(want, 0):
					if got != want {
						t.Errorf("backend=%s %s: Dot=%v want %v", backend, tc.name, got, want)
					}
				default:
					if math.Abs(got-want) > 1e-12 {
						t.Errorf("backend=%s %s: Dot=%v want %v", backend, tc.name, got, want)
					}
				}
			})
		}
	}
}

func TestAxpyNaNInfPassthroughBackends(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	x := []float64{1, nan, inf, -inf, 5, 6, 7, 8, nan, 2}
	y0 := []float64{1, 1, 1, 1, nan, inf, 1, 1, 1, 1}
	for _, backend := range Backends() {
		withBackend(t, backend, func() {
			y := append([]float64(nil), y0...)
			Axpy(2, x, y)
			for i := range y {
				want := y0[i] + 2*x[i]
				switch {
				case math.IsNaN(want):
					if !math.IsNaN(y[i]) {
						t.Errorf("backend=%s i=%d: %v want NaN", backend, i, y[i])
					}
				case math.IsInf(want, 0):
					if y[i] != want {
						t.Errorf("backend=%s i=%d: %v want %v", backend, i, y[i], want)
					}
				default:
					if math.Abs(y[i]-want) > 1e-12 {
						t.Errorf("backend=%s i=%d: %v want %v", backend, i, y[i], want)
					}
				}
			}
		})
	}
}

// TestMatMulBandInvariantNaN pins the determinism contract for the row
// micro-kernel pair: a row computed by the multi-row kernel and the same
// row computed by the single-row tail kernel (different band boundaries)
// must agree bit-for-bit even when 0·Inf terms produce NaN.
func TestMatMulBandInvariantNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m, k, n := 9, 12, 7
	a, b := randSlice(m*k, rng), randSlice(k*n, rng)
	a[3*k+5] = 0
	b[5*n+2] = math.Inf(1) // 0·Inf at row 3 → NaN in C[3][2]
	for _, backend := range Backends() {
		withBackend(t, backend, func() {
			full := make([]float64, m*n)
			MatMul(full, a, m, k, b, n)
			for _, band := range []int{1, 2, 3, 5} {
				banded := make([]float64, m*n)
				for lo := 0; lo < m; lo += band {
					hi := lo + band
					if hi > m {
						hi = m
					}
					MatMulRange(banded, a, m, k, b, n, lo, hi)
				}
				for i := range banded {
					if math.Float64bits(banded[i]) != math.Float64bits(full[i]) {
						t.Fatalf("backend=%s band=%d i=%d: banded %v != full %v (must be bit-identical)",
							backend, band, i, banded[i], full[i])
					}
				}
			}
		})
	}
}

func TestGFAxpyBackendsExact(t *testing.T) {
	const p = uint32(p31)
	rng := rand.New(rand.NewSource(36))
	coeffs := []uint32{1, 2, 3, p - 1, p - 2, p / 2, 123456789}
	elems := []uint32{0, 1, 2, p - 1, p - 2, p / 2}
	vectors := vectorBackendNames()
	if len(vectors) == 0 {
		t.Skip("no vector backend available; generic is the reference itself")
	}
	for _, c := range coeffs {
		for n := 0; n <= 40; n++ {
			dst0 := make([]uint32, n)
			src := make([]uint32, n)
			for i := range src {
				if i < len(elems) {
					dst0[i], src[i] = elems[i], elems[(i+1)%len(elems)]
				} else {
					dst0[i], src[i] = rng.Uint32()%p, rng.Uint32()%p
				}
			}
			want := append([]uint32(nil), dst0...)
			withBackend(t, "generic", func() { GFAxpyMod31(want, c, src) })
			for _, backend := range vectors {
				withBackend(t, backend, func() {
					got := append([]uint32(nil), dst0...)
					GFAxpyMod31(got, c, src)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("backend=%s c=%d n=%d i=%d: %d != generic %d", backend, c, n, i, got[i], want[i])
						}
					}
				})
			}
		}
	}
	// One long vector: every 8-lane block plus the scalar tail, random data.
	n := 4099
	dst0 := make([]uint32, n)
	src := make([]uint32, n)
	for i := range src {
		dst0[i], src[i] = rng.Uint32()%p, rng.Uint32()%p
	}
	want := append([]uint32(nil), dst0...)
	withBackend(t, "generic", func() { GFAxpyMod31(want, p-1, src) })
	for _, backend := range vectors {
		withBackend(t, backend, func() {
			got := append([]uint32(nil), dst0...)
			GFAxpyMod31(got, p-1, src)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("backend=%s long vector i=%d: %d != %d", backend, i, got[i], want[i])
				}
			}
		})
	}
}

// fuzzByteToFloat maps a fuzz byte to a float64 from a domain that
// includes NaN and both infinities but cannot overflow when summed.
func fuzzByteToFloat(b byte) float64 {
	switch b {
	case 0xFF:
		return math.NaN()
	case 0xFE:
		return math.Inf(1)
	case 0xFD:
		return math.Inf(-1)
	default:
		return (float64(b) - 126.5) / 25.3
	}
}

func FuzzDotBackends(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0xFF, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xFE, 0xFD, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip()
		}
		n := len(data) / 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = fuzzByteToFloat(data[i])
			y[i] = fuzzByteToFloat(data[n+i])
		}
		want := dotRef(x, y)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := Dot(x, y)
				switch {
				case math.IsNaN(want):
					if !math.IsNaN(got) {
						t.Errorf("backend=%s: Dot=%v want NaN", backend, got)
					}
				case math.IsInf(want, 0):
					if got != want {
						t.Errorf("backend=%s: Dot=%v want %v", backend, got, want)
					}
				default:
					if math.Abs(got-want) > 1e-10*float64(n+1) {
						t.Errorf("backend=%s: Dot=%v want %v", backend, got, want)
					}
				}
			})
		}
	})
}

func FuzzGFAxpyBackends(f *testing.F) {
	f.Add(uint32(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint32(1<<31-2), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0xFE, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, c uint32, data []byte) {
		if len(data) > 1<<12 {
			t.Skip()
		}
		const p = uint32(p31)
		c %= p
		n := len(data) / 8
		dst0 := make([]uint32, n)
		src := make([]uint32, n)
		for i := 0; i < n; i++ {
			dst0[i] = (uint32(data[i*8]) | uint32(data[i*8+1])<<8 | uint32(data[i*8+2])<<16 | uint32(data[i*8+3])<<24) % p
			src[i] = (uint32(data[i*8+4]) | uint32(data[i*8+5])<<8 | uint32(data[i*8+6])<<16 | uint32(data[i*8+7])<<24) % p
		}
		want := append([]uint32(nil), dst0...)
		withBackend(t, "generic", func() { GFAxpyMod31(want, c, src) })
		for _, backend := range vectorBackendNames() {
			withBackend(t, backend, func() {
				got := append([]uint32(nil), dst0...)
				GFAxpyMod31(got, c, src)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("backend=%s c=%d n=%d i=%d: %d != generic %d", backend, c, n, i, got[i], want[i])
					}
				}
			})
		}
	})
}

// bestOf times fn (run iters times per trial) over several trials and
// returns the fastest per-run duration.
func bestOf(trials, iters int, fn func()) time.Duration {
	best := time.Duration(1 << 62)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if d := time.Since(start) / time.Duration(iters); d < best {
			best = d
		}
	}
	return best
}

// skipUnlessVectorDispatched gates the speedup acceptance tests the same
// way TestParallelEncodeSpeedup gates on core count: when the dispatched
// backend IS the portable one (noasm build, or a CPU without AVX2+FMA)
// there is no vector path to demonstrate, so the test skips.
func skipUnlessVectorDispatched(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if ActiveBackend() == "generic" {
		t.Skipf("dispatched backend is the portable one (backends: %v)", Backends())
	}
}

// TestMatMulVectorSpeedup asserts the acceptance criterion — the
// dispatched vector MatMul at least 2× over the scalar backend — at a
// cache-friendly 512³ (the 1024³ ratio is reported by
// BenchmarkMatMulBlocked1024 under both backends).
func TestMatMulVectorSpeedup(t *testing.T) {
	skipUnlessVectorDispatched(t)
	const size = 512
	rng := rand.New(rand.NewSource(41))
	a, b := randSlice(size*size, rng), randSlice(size*size, rng)
	dst := make([]float64, size*size)
	vec := ActiveBackend()
	run := func(name string) time.Duration {
		var d time.Duration
		withBackend(t, name, func() {
			d = bestOf(3, 1, func() { MatMul(dst, a, size, size, b, size) })
		})
		return d
	}
	scalar := run("generic")
	vector := run(vec)
	t.Logf("MatMul %d³: generic %v, %s %v (%.2fx)", size, scalar, vec, vector, float64(scalar)/float64(vector))
	if float64(scalar) < 2*float64(vector) {
		t.Fatalf("vector MatMul only %.2fx over scalar, want >= 2x", float64(scalar)/float64(vector))
	}
}

// TestMatVecVectorSpeedup asserts the dispatched vector MatVec at least
// 1.5× over the scalar backend at a cache-resident 512² (at 1024² the
// operation is DRAM-bandwidth-bound and the ratio compresses toward the
// memory system; see BenchmarkMatVecKernel1024 under both backends).
func TestMatVecVectorSpeedup(t *testing.T) {
	skipUnlessVectorDispatched(t)
	const rows, cols = 512, 512
	rng := rand.New(rand.NewSource(42))
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	dst := make([]float64, rows)
	vec := ActiveBackend()
	run := func(name string) time.Duration {
		var d time.Duration
		withBackend(t, name, func() {
			d = bestOf(7, 20, func() { MatVec(dst, a, rows, cols, x) })
		})
		return d
	}
	scalar := run("generic")
	vector := run(vec)
	t.Logf("MatVec %dx%d: generic %v, %s %v (%.2fx)", rows, cols, scalar, vec, vector, float64(scalar)/float64(vector))
	if float64(scalar) < 1.5*float64(vector) {
		t.Fatalf("vector MatVec only %.2fx over scalar, want >= 1.5x", float64(scalar)/float64(vector))
	}
}

// TestGFAxpyVectorSpeedup asserts the vectorized GF(2³¹−1) mul-accumulate
// at least 1.5× over the Mersenne-folded scalar backend.
func TestGFAxpyVectorSpeedup(t *testing.T) {
	skipUnlessVectorDispatched(t)
	const n = 1 << 14
	dst := make([]uint32, n)
	src := make([]uint32, n)
	for i := range src {
		src[i] = (uint32(i) * 2654435761) % uint32(p31)
		dst[i] = (uint32(i) * 40503) % uint32(p31)
	}
	vec := ActiveBackend()
	run := func(name string) time.Duration {
		var d time.Duration
		withBackend(t, name, func() {
			d = bestOf(7, 200, func() { GFAxpyMod31(dst, 123456789, src) })
		})
		return d
	}
	scalar := run("generic")
	vector := run(vec)
	t.Logf("GFAxpy %d: generic %v, %s %v (%.2fx)", n, scalar, vec, vector, float64(scalar)/float64(vector))
	if float64(scalar) < 1.5*float64(vector) {
		t.Fatalf("vector GFAxpy only %.2fx over scalar, want >= 1.5x", float64(scalar)/float64(vector))
	}
}

// BenchmarkKernelBackends reports the key kernels under every available
// backend side by side (the CI smoke job also flips S2C2_KERNEL_BACKEND
// to pin process-wide selection).
func BenchmarkKernelBackends(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	const size = 512
	a, bb := randSlice(size*size, rng), randSlice(size*size, rng)
	x := randSlice(size, rng)
	mmDst := make([]float64, size*size)
	mvDst := make([]float64, size)
	gfDst := make([]uint32, 1<<14)
	gfSrc := make([]uint32, 1<<14)
	for i := range gfSrc {
		gfSrc[i] = (uint32(i) * 2654435761) % uint32(p31)
	}
	prev := ActiveBackend()
	defer SetBackend(prev) //nolint:errcheck
	for _, backend := range Backends() {
		if err := SetBackend(backend); err != nil {
			b.Fatal(err)
		}
		b.Run("MatMul512/"+backend, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMul(mmDst, a, size, size, bb, size)
			}
		})
		b.Run("MatVec512/"+backend, func(b *testing.B) {
			b.SetBytes(8 * size * size)
			for i := 0; i < b.N; i++ {
				MatVec(mvDst, a, size, size, x)
			}
		})
		b.Run("GFAxpy16k/"+backend, func(b *testing.B) {
			b.SetBytes(4 * 1 << 14)
			for i := 0; i < b.N; i++ {
				GFAxpyMod31(gfDst, 123456789, gfSrc)
			}
		})
	}
}
