package kernel

import (
	"math/rand"
	"testing"
	"time"
)

// Tests for the exact GF(2³¹−1) mat-mul accumulate kernel and the
// masked-tail paths of the AVX-512 backend: cross-backend exactness over
// shapes straddling every 8-lane boundary, fold-bound stress at c = P−1,
// fuzz harnesses, and the gated avx512 speedup acceptance tests.

// gfMatMulRef is the scalar reference for GFMatMulAccMod31: per-element
// canonical fold chain, band-relative dst.
func gfMatMulRef(dst, a []uint32, k int, b []uint32, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			acc := dst[(i-lo)*n+j]
			for t := 0; t < k; t++ {
				acc = gfMulAdd31(acc, a[i*k+t], b[t*n+j])
			}
			dst[(i-lo)*n+j] = acc
		}
	}
}

// TestGFMatMulBackendsExact sweeps shapes covering every masked-tail
// residue (n ≡ 1..7 mod 8) and k straddling the fused kernel's sweep,
// with boundary values (0, 1, P−1) mixed into random data. Results must
// be exactly equal on every backend.
func TestGFMatMulBackendsExact(t *testing.T) {
	const p = uint32(p31)
	rng := rand.New(rand.NewSource(61))
	shapes := [][3]int{ // rows, k, n
		{1, 1, 1}, {2, 3, 2}, {3, 2, 3}, {5, 4, 4}, {4, 5, 5}, {3, 7, 6},
		{2, 8, 7}, {7, 9, 8}, {8, 12, 9}, {9, 13, 15}, {5, 16, 16},
		{6, 17, 17}, {12, 12, 31}, {13, 11, 33}, {3, 40, 100},
		{1, 0, 4}, {1, 4, 0}, {0, 4, 4},
	}
	elems := []uint32{0, 1, 2, p - 1, p - 2, p / 2}
	for _, s := range shapes {
		rows, k, n := s[0], s[1], s[2]
		a := make([]uint32, rows*k)
		b := make([]uint32, k*n)
		for i := range a {
			if i < len(elems) {
				a[i] = elems[i]
			} else {
				a[i] = rng.Uint32() % p
			}
		}
		for i := range b {
			if i < len(elems) {
				b[i] = elems[len(elems)-1-i]
			} else {
				b[i] = rng.Uint32() % p
			}
		}
		dst0 := make([]uint32, rows*n)
		for i := range dst0 {
			dst0[i] = rng.Uint32() % p
		}
		want := append([]uint32(nil), dst0...)
		gfMatMulRef(want, a, k, b, n, 0, rows)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := append([]uint32(nil), dst0...)
				GFMatMulAccMod31(got, a, k, b, n, 0, rows)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("backend=%s rows=%d k=%d n=%d i=%d: %d want %d",
							backend, rows, k, n, i, got[i], want[i])
					}
				}
				// Band splits must hit the same values (band-relative dst).
				if rows > 2 {
					band := append([]uint32(nil), dst0[n:(rows-1)*n]...)
					GFMatMulAccMod31(band, a, k, b, n, 1, rows-1)
					for i := range band {
						if band[i] != want[n+i] {
							t.Fatalf("backend=%s rows=%d k=%d n=%d: band row value %d want %d",
								backend, rows, k, n, band[i], want[n+i])
						}
					}
				}
			})
		}
	}
}

// TestGFMatMulFoldBounds drives the fused kernel's accumulator invariant
// as hard as the field allows: every operand P−1 over a long shared
// dimension, where each step adds the maximal 62-bit product to the
// accumulator. Any fold-chain overflow shows up as an exactness break
// against the scalar reference.
func TestGFMatMulFoldBounds(t *testing.T) {
	const p = uint32(p31)
	for _, n := range []int{1, 3, 7, 8, 9, 16, 23} {
		for _, k := range []int{1, 7, 64, 257, 1000} {
			rows := 2
			a := make([]uint32, rows*k)
			b := make([]uint32, k*n)
			for i := range a {
				a[i] = p - 1
			}
			for i := range b {
				b[i] = p - 1
			}
			dst0 := make([]uint32, rows*n)
			for i := range dst0 {
				dst0[i] = p - 1
			}
			want := append([]uint32(nil), dst0...)
			gfMatMulRef(want, a, k, b, n, 0, rows)
			for _, backend := range Backends() {
				withBackend(t, backend, func() {
					got := append([]uint32(nil), dst0...)
					GFMatMulAccMod31(got, a, k, b, n, 0, rows)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("backend=%s k=%d n=%d i=%d: %d want %d (fold bound)",
								backend, k, n, i, got[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestMatMulMaskedTailBoundaries sweeps every row and column residue mod
// 8 through the float64 mat-mul: on the AVX-512 backend these land in the
// opmasked C tail paths (column mask (1<<w)-1, single-row kernel), which
// must neither read nor write past the row end nor disagree with the
// naive reference.
func TestMatMulMaskedTailBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for mres := 1; mres <= 8; mres++ {
		for nres := 1; nres <= 8; nres++ {
			m, n := 8+mres, 16+nres
			k := 2*mres + nres // odd sizes straddle the packers too
			a, b := randSlice(m*k, rng), randSlice(k*n, rng)
			want := make([]float64, m*n)
			naiveMatMul(want, a, m, k, b, n)
			for _, backend := range Backends() {
				withBackend(t, backend, func() {
					// Guard rows around dst catch masked stores that leak
					// past the band.
					padded := randSlice((m+2)*n, rng)
					guard := append([]float64(nil), padded...)
					got := padded[n : (m+1)*n]
					Zero(got)
					MatMulAccRange(got, a, m, k, b, n, 0, m)
					if d := maxAbsDiff(got, want); d > 1e-9*float64(k+1) {
						t.Errorf("backend=%s m=%d k=%d n=%d: max diff %g", backend, m, k, n, d)
					}
					for i := 0; i < n; i++ {
						if padded[i] != guard[i] || padded[(m+1)*n+i] != guard[(m+1)*n+i] {
							t.Fatalf("backend=%s m=%d k=%d n=%d: guard row clobbered at %d", backend, m, k, n, i)
						}
					}
				})
			}
		}
	}
}

func FuzzMatMulAccRangeBackends(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(5), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(9), uint8(7), uint8(9), []byte{0xFF, 1, 2, 3})
	f.Add(uint8(8), uint8(1), uint8(16), []byte{0xFE, 0xFD, 9, 9, 9})
	f.Fuzz(func(t *testing.T, m8, k8, n8 uint8, data []byte) {
		m, k, n := int(m8%16), int(k8%16), int(n8%24)
		if len(data) == 0 {
			t.Skip()
		}
		at := func(i int) float64 { return fuzzByteToFloat(data[i%len(data)]) }
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		for i := range a {
			a[i] = at(i)
		}
		for i := range b {
			b[i] = at(i + len(a))
		}
		want := make([]float64, m*n)
		naiveMatMul(want, a, m, k, b, n)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := make([]float64, m*n)
				MatMul(got, a, m, k, b, n)
				for i := range got {
					if !floatsEquivalent(got[i], want[i], 1e-9*float64(k+1)) {
						t.Errorf("backend=%s m=%d k=%d n=%d i=%d: %v want %v", backend, m, k, n, i, got[i], want[i])
					}
				}
			})
		}
	})
}

func FuzzGFMatMulBackends(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(12), uint8(12), uint8(9), []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, r8, k8, n8 uint8, data []byte) {
		rows, k, n := int(r8%12), int(k8%16), int(n8%24)
		if len(data) < 4 {
			t.Skip()
		}
		const p = uint32(p31)
		at := func(i int) uint32 {
			j := (i * 4) % (len(data) - 3)
			return (uint32(data[j]) | uint32(data[j+1])<<8 | uint32(data[j+2])<<16 | uint32(data[j+3])<<24) % p
		}
		a := make([]uint32, rows*k)
		b := make([]uint32, k*n)
		dst0 := make([]uint32, rows*n)
		for i := range a {
			a[i] = at(i)
		}
		for i := range b {
			b[i] = at(i + len(a))
		}
		for i := range dst0 {
			dst0[i] = at(i + len(a) + len(b))
		}
		want := append([]uint32(nil), dst0...)
		gfMatMulRef(want, a, k, b, n, 0, rows)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := append([]uint32(nil), dst0...)
				GFMatMulAccMod31(got, a, k, b, n, 0, rows)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("backend=%s rows=%d k=%d n=%d i=%d: %d != ref %d", backend, rows, k, n, i, got[i], want[i])
					}
				}
			})
		}
	})
}

// floatsEquivalent treats NaN==NaN and exact-Inf as matches, everything
// else within tol.
func floatsEquivalent(got, want, tol float64) bool {
	switch {
	case want != want: // NaN
		return got != got
	case want > 1e300 || want < -1e300:
		return got == want
	default:
		d := got - want
		return d <= tol && d >= -tol
	}
}

// skipUnlessAVX512Dispatched gates the avx512-vs-avx2 acceptance tests:
// without avx512 dispatched there is no 512-bit path to demonstrate.
func skipUnlessAVX512Dispatched(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if ActiveBackend() != "avx512" {
		t.Skipf("dispatched backend is %q, not avx512 (backends: %v)", ActiveBackend(), Backends())
	}
}

// TestMatMulAVX512Speedup asserts the tentpole acceptance criterion: the
// avx512 MatMul at least 1.3× over the avx2 backend at 1024³ (eight-row
// ZMM tiles with embedded-broadcast FMAs versus the 4×8 YMM kernel).
func TestMatMulAVX512Speedup(t *testing.T) {
	skipUnlessAVX512Dispatched(t)
	const size = 1024
	rng := rand.New(rand.NewSource(63))
	a, b := randSlice(size*size, rng), randSlice(size*size, rng)
	dst := make([]float64, size*size)
	run := func(name string) time.Duration {
		var d time.Duration
		withBackend(t, name, func() {
			d = bestOf(1, 1, func() { MatMul(dst, a, size, size, b, size) })
		})
		return d
	}
	// Paired trials, best ratio: other test binaries share this machine,
	// and back-to-back runs see the same contention, so the ratio within
	// a pair is far more stable than two independently-timed bests. One
	// untimed warm run per backend first (page-in, 512-bit power-up).
	run("avx2")
	run("avx512")
	best, bestA2, bestA5 := 0.0, time.Duration(0), time.Duration(0)
	for trial := 0; trial < 5; trial++ {
		a2 := run("avx2")
		a5 := run("avx512")
		if r := float64(a2) / float64(a5); r > best {
			best, bestA2, bestA5 = r, a2, a5
		}
	}
	t.Logf("MatMul %d³: avx2 %v, avx512 %v (%.2fx, best of 5 paired trials)", size, bestA2, bestA5, best)
	if best < 1.3 {
		t.Fatalf("avx512 MatMul only %.2fx over avx2, want >= 1.3x", best)
	}
}

// TestGFDecodeSolveAVX512Speedup asserts the exact-path acceptance
// criterion: the fused avx512 GF mat-mul accumulate at least 1.5× over
// the scalar backend on the decode-solve shape (a cached k×k inverse
// applied to every row-group right-hand side at once).
func TestGFDecodeSolveAVX512Speedup(t *testing.T) {
	skipUnlessAVX512Dispatched(t)
	const k, n = 12, 4096
	a := make([]uint32, k*k)
	b := make([]uint32, k*n)
	dst := make([]uint32, k*n)
	for i := range a {
		a[i] = (uint32(i) * 2654435761) % uint32(p31)
	}
	for i := range b {
		b[i] = (uint32(i) * 40503) % uint32(p31)
	}
	run := func(name string) time.Duration {
		var d time.Duration
		withBackend(t, name, func() {
			d = bestOf(5, 20, func() { GFMatMulAccMod31(dst, a, k, b, n, 0, k) })
		})
		return d
	}
	scalar := run("generic")
	vector := run("avx512")
	t.Logf("GF decode solve %dx%d·%dx%d: generic %v, avx512 %v (%.2fx)",
		k, k, k, n, scalar, vector, float64(scalar)/float64(vector))
	if float64(scalar) < 1.5*float64(vector) {
		t.Fatalf("avx512 GF decode solve only %.2fx over scalar, want >= 1.5x", float64(scalar)/float64(vector))
	}
}
