package predict

import (
	"fmt"
	"math"
)

// AR1 is the ARIMA(1,0,0) model x(t+1) = c + φ·x(t) + ε, fitted by
// ordinary least squares pooled across the training series. The paper
// found it the best ARIMA variant (§6.1).
type AR1 struct {
	c, phi float64
	fitted bool
}

// Name implements Forecaster.
func (a *AR1) Name() string { return "arima(1,0,0)" }

// Fit estimates (c, φ) by OLS over all consecutive pairs.
func (a *AR1) Fit(series [][]float64) error {
	var sx, sy, sxx, sxy float64
	n := 0.0
	for _, s := range series {
		norm, _ := normalizeMax(s)
		for t := 0; t+1 < len(norm); t++ {
			x, y := norm[t], norm[t+1]
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			n++
		}
	}
	if n < 2 {
		return fmt.Errorf("predict: AR1 needs at least 2 sample pairs")
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		// Constant series: persistence.
		a.c, a.phi = 0, 1
	} else {
		a.phi = (n*sxy - sx*sy) / den
		a.c = (sy - a.phi*sx) / n
	}
	a.fitted = true
	return nil
}

// Predict returns c + φ·x(t), rescaled to the history's units.
func (a *AR1) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	if !a.fitted {
		return history[len(history)-1]
	}
	norm, scale := normalizeMax(history)
	y := (a.c + a.phi*norm[len(norm)-1]) * scale
	if y < 0 {
		y = 0
	}
	return y
}

// AR2 is ARIMA(2,0,0): x(t+1) = c + φ₁·x(t) + φ₂·x(t−1), fitted by OLS.
type AR2 struct {
	c, phi1, phi2 float64
	fitted        bool
}

// Name implements Forecaster.
func (a *AR2) Name() string { return "arima(2,0,0)" }

// Fit estimates (c, φ₁, φ₂) by solving the 3×3 normal equations.
func (a *AR2) Fit(series [][]float64) error {
	// Normal equations for regression y = c + φ1·x1 + φ2·x2.
	var s [3][3]float64
	var b [3]float64
	n := 0.0
	for _, sr := range series {
		norm, _ := normalizeMax(sr)
		for t := 1; t+1 < len(norm); t++ {
			x := [3]float64{1, norm[t], norm[t-1]}
			y := norm[t+1]
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					s[i][j] += x[i] * x[j]
				}
				b[i] += x[i] * y
			}
			n++
		}
	}
	if n < 3 {
		return fmt.Errorf("predict: AR2 needs at least 3 samples")
	}
	sol, ok := solve3(s, b)
	if !ok {
		a.c, a.phi1, a.phi2 = 0, 1, 0 // degenerate: persistence
	} else {
		a.c, a.phi1, a.phi2 = sol[0], sol[1], sol[2]
	}
	a.fitted = true
	return nil
}

// Predict returns the two-lag autoregression forecast.
func (a *AR2) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	if len(history) == 1 || !a.fitted {
		return history[len(history)-1]
	}
	norm, scale := normalizeMax(history)
	t := len(norm) - 1
	y := (a.c + a.phi1*norm[t] + a.phi2*norm[t-1]) * scale
	if y < 0 {
		y = 0
	}
	return y
}

// solve3 solves a 3×3 system by Gaussian elimination with partial pivots.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	var x [3]float64
	m := a
	v := b
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return x, false
		}
		m[p], m[col] = m[col], m[p]
		v[p], v[col] = v[col], v[p]
		for r := col + 1; r < 3; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < 3; c++ {
				m[r][c] -= f * m[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	for i := 2; i >= 0; i-- {
		s := v[i]
		for j := i + 1; j < 3; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, true
}

// ARIMA111 is ARIMA(1,1,1): on the differenced series d(t)=x(t)−x(t−1),
// d(t) = φ·d(t−1) + θ·e(t−1) + e(t). Parameters are fitted by conditional
// least squares over a (φ, θ) grid — robust and dependency-free.
type ARIMA111 struct {
	phi, theta float64
	fitted     bool
}

// Name implements Forecaster.
func (a *ARIMA111) Name() string { return "arima(1,1,1)" }

// Fit grid-searches (φ, θ) ∈ [−0.95, 0.95]² minimising the conditional
// sum of squared innovations across the training series.
func (a *ARIMA111) Fit(series [][]float64) error {
	ok := false
	for _, s := range series {
		if len(s) >= 4 {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("predict: ARIMA(1,1,1) needs a series of length >= 4")
	}
	best := math.Inf(1)
	for phi := -0.95; phi <= 0.951; phi += 0.05 {
		for th := -0.95; th <= 0.951; th += 0.05 {
			css := 0.0
			for _, s := range series {
				norm, _ := normalizeMax(s)
				css += css111(norm, phi, th)
			}
			if css < best {
				best = css
				a.phi, a.theta = phi, th
			}
		}
	}
	a.fitted = true
	return nil
}

// css111 computes the conditional sum of squares of one series.
func css111(x []float64, phi, theta float64) float64 {
	if len(x) < 3 {
		return 0
	}
	css := 0.0
	ePrev := 0.0
	for t := 2; t < len(x); t++ {
		d := x[t] - x[t-1]
		dPrev := x[t-1] - x[t-2]
		e := d - phi*dPrev - theta*ePrev
		css += e * e
		ePrev = e
	}
	return css
}

// Predict filters the history to recover the latest innovation, then
// forecasts x̂ = x(t) + φ·d(t) + θ·e(t).
func (a *ARIMA111) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	if len(history) < 3 || !a.fitted {
		return history[len(history)-1]
	}
	norm, scale := normalizeMax(history)
	ePrev := 0.0
	var dLast float64
	for t := 2; t < len(norm); t++ {
		d := norm[t] - norm[t-1]
		dPrev := norm[t-1] - norm[t-2]
		ePrev = d - a.phi*dPrev - a.theta*ePrev
		dLast = d
	}
	y := (norm[len(norm)-1] + a.phi*dLast + a.theta*ePrev) * scale
	if y < 0 {
		y = 0
	}
	return y
}
