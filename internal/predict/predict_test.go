package predict

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coded-computing/s2c2/internal/trace"
)

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{110, 90}, []float64{100, 100})
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v want 0.1", got)
	}
	if MAPE([]float64{1}, []float64{0}) != 0 {
		t.Fatal("zero actuals must be skipped")
	}
}

func TestLastValue(t *testing.T) {
	var lv LastValue
	if err := lv.Fit(nil); err != nil {
		t.Fatal(err)
	}
	if lv.Predict([]float64{1, 2, 3}) != 3 {
		t.Fatal("LastValue should return the last observation")
	}
	if lv.Predict(nil) != 0 {
		t.Fatal("empty history should predict 0")
	}
}

func TestAR1RecoversKnownProcess(t *testing.T) {
	// Synthesize x(t+1) = 0.3 + 0.6 x(t) + tiny noise; OLS must recover
	// the coefficients closely (series already in [0,1] so normalisation
	// by max is nearly identity).
	rng := rand.New(rand.NewSource(1))
	series := make([][]float64, 5)
	for i := range series {
		s := make([]float64, 300)
		s[0] = 0.5
		for t := 1; t < 300; t++ {
			s[t] = 0.3 + 0.6*s[t-1] + 0.005*rng.NormFloat64()
		}
		series[i] = s
	}
	var a AR1
	if err := a.Fit(series); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.phi-0.6) > 0.1 {
		t.Fatalf("phi = %v want ~0.6", a.phi)
	}
	// One-step prediction should be accurate.
	h := series[0][:200]
	pred := a.Predict(h)
	want := 0.3 + 0.6*h[199]
	if math.Abs(pred-want)/want > 0.05 {
		t.Fatalf("Predict = %v want ~%v", pred, want)
	}
}

func TestAR1ConstantSeries(t *testing.T) {
	var a AR1
	if err := a.Fit([][]float64{{2, 2, 2, 2, 2}}); err != nil {
		t.Fatal(err)
	}
	if p := a.Predict([]float64{2, 2, 2}); math.Abs(p-2) > 1e-9 {
		t.Fatalf("constant series should predict itself, got %v", p)
	}
}

func TestAR2FitsSecondOrderProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series := make([][]float64, 4)
	for i := range series {
		s := make([]float64, 400)
		s[0], s[1] = 0.5, 0.55
		for t := 2; t < 400; t++ {
			s[t] = 0.1 + 0.5*s[t-1] + 0.3*s[t-2] + 0.003*rng.NormFloat64()
		}
		series[i] = s
	}
	var a AR2
	if err := a.Fit(series); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.phi1-0.5) > 0.15 || math.Abs(a.phi2-0.3) > 0.15 {
		t.Fatalf("phi = %v, %v want ~0.5, 0.3", a.phi1, a.phi2)
	}
}

func TestARIMA111FitAndPredict(t *testing.T) {
	tr := trace.CloudStable(6, 300, 3)
	var a ARIMA111
	mape, err := Evaluate(&a, tr.Speeds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if mape <= 0 || mape > 0.5 {
		t.Fatalf("ARIMA(1,1,1) MAPE = %v out of sane range", mape)
	}
}

func TestFitErrorsOnTinySeries(t *testing.T) {
	var a AR1
	if err := a.Fit([][]float64{{1}}); err == nil {
		t.Fatal("AR1 must reject degenerate input")
	}
	var a2 AR2
	if err := a2.Fit([][]float64{{1, 2}}); err == nil {
		t.Fatal("AR2 must reject degenerate input")
	}
	var a3 ARIMA111
	if err := a3.Fit([][]float64{{1, 2}}); err == nil {
		t.Fatal("ARIMA111 must reject degenerate input")
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	// Analytic BPTT gradient must match central finite differences.
	cfg := LSTMConfig{Hidden: 3, Window: 6, Epochs: 1, LR: 0.01, Seed: 7}
	m := NewLSTM(cfg)
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 7)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	n := m.numParams()
	analytic := make([]float64, n)
	m.lossAndGrad(xs, analytic)

	params := make([]float64, n)
	m.flatten(params)
	const eps = 1e-6
	grad := make([]float64, n)
	for i := 0; i < n; i++ {
		orig := params[i]
		params[i] = orig + eps
		m.unflatten(params)
		lp := m.lossAndGrad(xs, make([]float64, n))
		params[i] = orig - eps
		m.unflatten(params)
		lm := m.lossAndGrad(xs, make([]float64, n))
		params[i] = orig
		grad[i] = (lp - lm) / (2 * eps)
	}
	m.unflatten(params)
	for i := 0; i < n; i++ {
		diff := math.Abs(analytic[i] - grad[i])
		scale := math.Max(1e-4, math.Max(math.Abs(analytic[i]), math.Abs(grad[i])))
		if diff/scale > 1e-4 {
			t.Fatalf("param %d: analytic %.8g numeric %.8g", i, analytic[i], grad[i])
		}
	}
}

func TestLSTMTrainingReducesLoss(t *testing.T) {
	tr := trace.CloudStable(4, 200, 5)
	cfg := DefaultLSTMConfig()
	cfg.Epochs = 25
	m := NewLSTM(cfg)
	var train [][]float64
	for _, s := range tr.Speeds {
		train = append(train, s[:160])
	}
	lossBefore := windowLoss(m, train)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	lossAfter := windowLoss(m, train)
	if lossAfter >= lossBefore {
		t.Fatalf("training did not reduce loss: %v -> %v", lossBefore, lossAfter)
	}
}

func windowLoss(m *LSTM, series [][]float64) float64 {
	total := 0.0
	grad := make([]float64, m.numParams())
	for _, s := range series {
		norm, _ := normalizeMax(s)
		total += m.lossAndGrad(norm, grad)
	}
	return total
}

func TestLSTMBeatsOrMatchesNaiveOnStableTraces(t *testing.T) {
	// §6.1: the LSTM is the paper's best model. On our stable traces it
	// must at least be competitive with AR(1) (within 20%) and produce a
	// sane MAPE. Exact superiority depends on trace realisations, so the
	// assertion is deliberately tolerant; the experiment harness reports
	// the actual numbers.
	tr := trace.CloudStable(8, 250, 11)
	cfg := DefaultLSTMConfig()
	cfg.Epochs = 40
	lstm := NewLSTM(cfg)
	lstmMAPE, err := Evaluate(lstm, tr.Speeds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ar1MAPE, err := Evaluate(&AR1{}, tr.Speeds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LSTM MAPE %.4f vs AR1 MAPE %.4f", lstmMAPE, ar1MAPE)
	if lstmMAPE > 0.4 {
		t.Fatalf("LSTM MAPE %v unreasonably high", lstmMAPE)
	}
	if lstmMAPE > ar1MAPE*1.2 {
		t.Fatalf("LSTM (%.4f) should be competitive with AR1 (%.4f)", lstmMAPE, ar1MAPE)
	}
}

func TestLSTMPredictEdgeCases(t *testing.T) {
	m := NewLSTM(DefaultLSTMConfig())
	if m.Predict(nil) != 0 {
		t.Fatal("empty history must predict 0")
	}
	if p := m.Predict([]float64{1.0}); p < 0 {
		t.Fatal("prediction must be non-negative")
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(LastValue{}, [][]float64{{1, 2, 3}}, 1.5); err == nil {
		t.Fatal("bad trainFrac must fail")
	}
	if _, err := Evaluate(LastValue{}, [][]float64{{1}}, 0.8); err == nil {
		t.Fatal("too-short series must fail")
	}
}
