package predict

import (
	"testing"

	"github.com/coded-computing/s2c2/internal/trace"
)

func TestEnsembleFitRequiresModels(t *testing.T) {
	e := &Ensemble{}
	if err := e.Fit([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("empty ensemble must fail to fit")
	}
}

func TestEnsembleTracksBestModel(t *testing.T) {
	// Fast ensemble (no LSTM) to keep the test quick.
	e := &Ensemble{Models: []Forecaster{&AR1{}, LastValue{}}}
	tr := trace.CloudStable(6, 200, 17)
	mape, err := Evaluate(e, tr.Speeds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ar1MAPE, err := Evaluate(&AR1{}, tr.Speeds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	lvMAPE, err := Evaluate(LastValue{}, tr.Speeds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	bestSingle := ar1MAPE
	if lvMAPE < bestSingle {
		bestSingle = lvMAPE
	}
	t.Logf("ensemble %.4f, ar1 %.4f, last-value %.4f", mape, ar1MAPE, lvMAPE)
	// Per-series selection should be close to (or better than) the best
	// single model; allow 15% slack for selection noise on short windows.
	if mape > bestSingle*1.15 {
		t.Fatalf("ensemble (%.4f) much worse than best single model (%.4f)", mape, bestSingle)
	}
}

func TestEnsemblePredictEdgeCases(t *testing.T) {
	e := &Ensemble{Models: []Forecaster{LastValue{}}}
	if e.Predict(nil) != 0 {
		t.Fatal("empty history must predict 0")
	}
	if e.Predict([]float64{2}) != 2 {
		t.Fatal("short history should fall back to persistence")
	}
	if e.BestModel([]float64{1}) != "last-value" {
		t.Fatal("short history best model should be persistence")
	}
}

func TestEnsembleBestModelSwitches(t *testing.T) {
	e := &Ensemble{Models: []Forecaster{&AR1{}, LastValue{}}, Window: 8}
	// Strongly mean-reverting series: AR(1) with phi well below 1.
	series := make([]float64, 120)
	series[0] = 0.9
	for t := 1; t < len(series); t++ {
		series[t] = 0.5 + 0.3*series[t-1]
		if t%2 == 0 {
			series[t] += 0.05
		} else {
			series[t] -= 0.05
		}
	}
	if err := e.Fit([][]float64{series}); err != nil {
		t.Fatal(err)
	}
	name := e.BestModel(series)
	if name != "arima(1,0,0)" {
		t.Logf("selected %s (AR1 expected on oscillating mean-reverting data; acceptable if scores tie)", name)
	}
	// A random-walk-like trending series should favour persistence.
	walk := make([]float64, 120)
	walk[0] = 0.5
	for t := 1; t < len(walk); t++ {
		walk[t] = walk[t-1] + 0.004
	}
	if err := e.Fit([][]float64{walk}); err != nil {
		t.Fatal(err)
	}
	if p := e.Predict(walk); p <= 0 {
		t.Fatalf("prediction %v", p)
	}
}

func TestDefaultEnsembleConstruction(t *testing.T) {
	e := NewDefaultEnsemble(1)
	if len(e.Models) != 5 {
		t.Fatalf("default ensemble has %d models, want 5", len(e.Models))
	}
	if e.Name() == "" {
		t.Fatal("name missing")
	}
}
