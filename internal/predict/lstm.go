package predict

import (
	"fmt"
	"math"
	"math/rand"
)

// Gate indices into the stacked LSTM parameter blocks.
const (
	gateI = iota // input gate
	gateF        // forget gate
	gateO        // output gate
	gateG        // candidate cell
	numGates
)

// LSTMConfig parameterises the speed-prediction LSTM. The zero value is
// not usable; call DefaultLSTMConfig for the paper's architecture.
type LSTMConfig struct {
	Hidden   int     // hidden-state dimension (paper: 4)
	Window   int     // truncated-BPTT window length
	Epochs   int     // passes over the training windows
	LR       float64 // Adam learning rate
	Seed     int64   // weight-init / shuffle seed
	ClipNorm float64 // global gradient-norm clip (0 = off)
}

// DefaultLSTMConfig returns the §6.1 architecture: a single LSTM layer
// with 1-dimensional input and output and a 4-dimensional hidden state.
func DefaultLSTMConfig() LSTMConfig {
	return LSTMConfig{Hidden: 4, Window: 16, Epochs: 60, LR: 0.02, Seed: 1, ClipNorm: 1}
}

// LSTM is a one-layer scalar-in/scalar-out LSTM forecaster trained with
// truncated back-propagation through time and Adam.
type LSTM struct {
	cfg LSTMConfig

	// Parameters. wx[g][h]: input weights; wh[g][h*H+h']: recurrent
	// weights; b[g][h]: biases; wy[h], by: output head.
	wx, wh, b [numGates][]float64
	wy        []float64
	by        float64

	adam *adamState
}

// NewLSTM builds an untrained LSTM.
func NewLSTM(cfg LSTMConfig) *LSTM {
	if cfg.Hidden <= 0 || cfg.Window < 2 || cfg.Epochs < 1 || cfg.LR <= 0 {
		panic(fmt.Sprintf("predict: bad LSTM config %+v", cfg))
	}
	m := &LSTM{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hidden
	scale := 1 / math.Sqrt(float64(h))
	for g := 0; g < numGates; g++ {
		m.wx[g] = randSlice(h, scale, rng)
		m.wh[g] = randSlice(h*h, scale, rng)
		m.b[g] = make([]float64, h)
	}
	// Forget-gate bias init of 1 is the standard trick for gradient flow.
	for i := range m.b[gateF] {
		m.b[gateF][i] = 1
	}
	m.wy = randSlice(h, scale, rng)
	m.adam = newAdamState(m.numParams(), cfg.LR)
	return m
}

func randSlice(n int, scale float64, rng *rand.Rand) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = scale * (2*rng.Float64() - 1)
	}
	return s
}

// Name implements Forecaster.
func (m *LSTM) Name() string { return fmt.Sprintf("lstm(h=%d)", m.cfg.Hidden) }

func (m *LSTM) numParams() int {
	h := m.cfg.Hidden
	return numGates*(h+h*h+h) + h + 1
}

// flatten copies parameters into a single vector (for Adam and tests).
func (m *LSTM) flatten(dst []float64) {
	at := 0
	for g := 0; g < numGates; g++ {
		at += copy(dst[at:], m.wx[g])
		at += copy(dst[at:], m.wh[g])
		at += copy(dst[at:], m.b[g])
	}
	at += copy(dst[at:], m.wy)
	dst[at] = m.by
}

func (m *LSTM) unflatten(src []float64) {
	at := 0
	for g := 0; g < numGates; g++ {
		at += copy(m.wx[g], src[at:])
		at += copy(m.wh[g], src[at:])
		at += copy(m.b[g], src[at:])
	}
	at += copy(m.wy, src[at:])
	m.by = src[at]
}

// cellState captures one forward step's activations for BPTT.
type cellState struct {
	x          float64
	i, f, o, g []float64
	c, h, tc   []float64 // cell, hidden, tanh(cell)
}

// step runs one LSTM cell update from (hPrev, cPrev) on input x.
func (m *LSTM) step(x float64, hPrev, cPrev []float64) cellState {
	h := m.cfg.Hidden
	st := cellState{
		x: x,
		i: make([]float64, h), f: make([]float64, h),
		o: make([]float64, h), g: make([]float64, h),
		c: make([]float64, h), h: make([]float64, h), tc: make([]float64, h),
	}
	for j := 0; j < h; j++ {
		var pre [numGates]float64
		for g := 0; g < numGates; g++ {
			s := m.wx[g][j]*x + m.b[g][j]
			row := m.wh[g][j*h : (j+1)*h]
			for jj, hv := range hPrev {
				s += row[jj] * hv
			}
			pre[g] = s
		}
		st.i[j] = sigmoid(pre[gateI])
		st.f[j] = sigmoid(pre[gateF])
		st.o[j] = sigmoid(pre[gateO])
		st.g[j] = math.Tanh(pre[gateG])
		st.c[j] = st.f[j]*cPrev[j] + st.i[j]*st.g[j]
		st.tc[j] = math.Tanh(st.c[j])
		st.h[j] = st.o[j] * st.tc[j]
	}
	return st
}

// output applies the scalar head to a hidden state.
func (m *LSTM) output(h []float64) float64 {
	y := m.by
	for j, v := range h {
		y += m.wy[j] * v
	}
	return y
}

// lossAndGrad runs forward+BPTT on one window. xs has length T+1: inputs
// are xs[0..T-1], targets xs[1..T]. It returns the mean squared error and
// accumulates gradients into grad (flattened layout).
func (m *LSTM) lossAndGrad(xs []float64, grad []float64) float64 {
	h := m.cfg.Hidden
	T := len(xs) - 1
	states := make([]cellState, T)
	hPrev := make([]float64, h)
	cPrev := make([]float64, h)
	preds := make([]float64, T)
	loss := 0.0
	for t := 0; t < T; t++ {
		st := m.step(xs[t], hPrev, cPrev)
		states[t] = st
		preds[t] = m.output(st.h)
		d := preds[t] - xs[t+1]
		loss += d * d
		hPrev, cPrev = st.h, st.c
	}
	loss /= float64(T)

	// Gradient accumulators mirroring the parameter layout.
	gwx := make([][]float64, numGates)
	gwh := make([][]float64, numGates)
	gb := make([][]float64, numGates)
	for g := 0; g < numGates; g++ {
		gwx[g] = make([]float64, h)
		gwh[g] = make([]float64, h*h)
		gb[g] = make([]float64, h)
	}
	gwy := make([]float64, h)
	gby := 0.0

	dhNext := make([]float64, h)
	dcNext := make([]float64, h)
	for t := T - 1; t >= 0; t-- {
		st := states[t]
		dy := 2 * (preds[t] - xs[t+1]) / float64(T)
		gby += dy
		dh := make([]float64, h)
		copy(dh, dhNext)
		for j := 0; j < h; j++ {
			gwy[j] += dy * st.h[j]
			dh[j] += dy * m.wy[j]
		}
		var hPrevT, cPrevT []float64
		if t > 0 {
			hPrevT, cPrevT = states[t-1].h, states[t-1].c
		} else {
			hPrevT, cPrevT = make([]float64, h), make([]float64, h)
		}
		dhPrev := make([]float64, h)
		dcPrev := make([]float64, h)
		for j := 0; j < h; j++ {
			do := dh[j] * st.tc[j]
			dc := dh[j]*st.o[j]*(1-st.tc[j]*st.tc[j]) + dcNext[j]
			df := dc * cPrevT[j]
			di := dc * st.g[j]
			dg := dc * st.i[j]
			dcPrev[j] = dc * st.f[j]
			var da [numGates]float64
			da[gateI] = di * st.i[j] * (1 - st.i[j])
			da[gateF] = df * st.f[j] * (1 - st.f[j])
			da[gateO] = do * st.o[j] * (1 - st.o[j])
			da[gateG] = dg * (1 - st.g[j]*st.g[j])
			for g := 0; g < numGates; g++ {
				gwx[g][j] += da[g] * st.x
				gb[g][j] += da[g]
				row := m.wh[g][j*h : (j+1)*h]
				grow := gwh[g][j*h : (j+1)*h]
				for jj := 0; jj < h; jj++ {
					grow[jj] += da[g] * hPrevT[jj]
					dhPrev[jj] += da[g] * row[jj]
				}
			}
		}
		dhNext, dcNext = dhPrev, dcPrev
	}

	// Flatten gradient into grad.
	at := 0
	for g := 0; g < numGates; g++ {
		at += copy(grad[at:], gwx[g])
		at += copy(grad[at:], gwh[g])
		at += copy(grad[at:], gb[g])
	}
	at += copy(grad[at:], gwy)
	grad[at] += gby
	return loss
}

// Fit trains the LSTM on the given series (normalised per-series by max)
// using sliding windows of cfg.Window.
func (m *LSTM) Fit(series [][]float64) error {
	var windows [][]float64
	for _, s := range series {
		norm, _ := normalizeMax(s)
		w := m.cfg.Window
		if len(norm) < w+1 {
			if len(norm) >= 3 {
				windows = append(windows, norm)
			}
			continue
		}
		for at := 0; at+w+1 <= len(norm); at += w / 2 {
			windows = append(windows, norm[at:at+w+1])
		}
	}
	if len(windows) == 0 {
		return fmt.Errorf("predict: no training windows (series too short for window %d)", m.cfg.Window)
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 17))
	params := make([]float64, m.numParams())
	grad := make([]float64, m.numParams())
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		perm := rng.Perm(len(windows))
		for _, wi := range perm {
			for i := range grad {
				grad[i] = 0
			}
			m.lossAndGrad(windows[wi], grad)
			if m.cfg.ClipNorm > 0 {
				clipNorm(grad, m.cfg.ClipNorm)
			}
			m.flatten(params)
			m.adam.update(params, grad)
			m.unflatten(params)
		}
	}
	return nil
}

// Predict runs the trained cell over the (max-normalised) history and
// rescales the one-step-ahead output.
func (m *LSTM) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	norm, scale := normalizeMax(history)
	// Only the trailing window matters materially; bound the work.
	if len(norm) > 4*m.cfg.Window {
		norm = norm[len(norm)-4*m.cfg.Window:]
	}
	h := make([]float64, m.cfg.Hidden)
	c := make([]float64, m.cfg.Hidden)
	var st cellState
	for _, x := range norm {
		st = m.step(x, h, c)
		h, c = st.h, st.c
	}
	y := m.output(h) * scale
	if y < 0 {
		y = 0
	}
	return y
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func clipNorm(g []float64, max float64) {
	s := 0.0
	for _, v := range g {
		s += v * v
	}
	n := math.Sqrt(s)
	if n <= max || n == 0 {
		return
	}
	f := max / n
	for i := range g {
		g[i] *= f
	}
}

// adamState implements the Adam optimiser over a flat parameter vector.
type adamState struct {
	lr, b1, b2, eps float64
	m, v            []float64
	t               int
}

func newAdamState(n int, lr float64) *adamState {
	return &adamState{lr: lr, b1: 0.9, b2: 0.999, eps: 1e-8,
		m: make([]float64, n), v: make([]float64, n)}
}

func (a *adamState) update(params, grad []float64) {
	a.t++
	c1 := 1 - math.Pow(a.b1, float64(a.t))
	c2 := 1 - math.Pow(a.b2, float64(a.t))
	for i, g := range grad {
		a.m[i] = a.b1*a.m[i] + (1-a.b1)*g
		a.v[i] = a.b2*a.v[i] + (1-a.b2)*g*g
		params[i] -= a.lr * (a.m[i] / c1) / (math.Sqrt(a.v[i]/c2) + a.eps)
	}
}
