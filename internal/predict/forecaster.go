// Package predict implements the speed-prediction layer of §3.2/§6.1:
// a from-scratch LSTM (1-dimensional input and output, 4-dimensional
// hidden state, tanh activation — the paper's best model) trained with
// truncated BPTT and Adam, plus the ARIMA family the paper compares
// against (AR(1), AR(2), ARIMA(1,1,1)) and a naive last-value baseline.
//
// Forecasters consume per-node speed series normalised by their maximum
// (as the paper's measurements are) and produce one-step-ahead forecasts.
package predict

import "fmt"

// Forecaster produces one-step-ahead speed forecasts.
type Forecaster interface {
	// Name identifies the model in experiment output.
	Name() string
	// Fit trains the model on a set of speed series (one per node).
	Fit(series [][]float64) error
	// Predict forecasts the next value of a series given its history.
	// An empty history returns 0.
	Predict(history []float64) float64
}

// MAPE returns the mean absolute percentage error of pred vs actual,
// expressed as a fraction (0.167 == 16.7%). Zero actuals are skipped.
func MAPE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("predict: MAPE length mismatch %d vs %d", len(pred), len(actual)))
	}
	sum, n := 0.0, 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		d := (pred[i] - actual[i]) / actual[i]
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Evaluate fits f on the first trainFrac of every series and returns its
// MAPE over one-step-ahead predictions on the remaining test portion —
// the paper's 80:20 protocol.
func Evaluate(f Forecaster, series [][]float64, trainFrac float64) (float64, error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return 0, fmt.Errorf("predict: trainFrac %v out of (0,1)", trainFrac)
	}
	train := make([][]float64, len(series))
	for i, s := range series {
		cut := int(float64(len(s)) * trainFrac)
		if cut < 2 {
			return 0, fmt.Errorf("predict: series %d too short (%d)", i, len(s))
		}
		train[i] = s[:cut]
	}
	if err := f.Fit(train); err != nil {
		return 0, err
	}
	var preds, actuals []float64
	for i, s := range series {
		cut := len(train[i])
		for t := cut; t < len(s); t++ {
			preds = append(preds, f.Predict(s[:t]))
			actuals = append(actuals, s[t])
		}
	}
	return MAPE(preds, actuals), nil
}

// LastValue is the naive persistence forecaster: x̂(t+1) = x(t).
type LastValue struct{}

// Name implements Forecaster.
func (LastValue) Name() string { return "last-value" }

// Fit is a no-op: the persistence model has no parameters.
func (LastValue) Fit([][]float64) error { return nil }

// Predict returns the most recent observation.
func (LastValue) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	return history[len(history)-1]
}

// normalizeMax rescales s by its maximum, returning the scale. A zero or
// empty series returns scale 1.
func normalizeMax(s []float64) ([]float64, float64) {
	max := 0.0
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = v / max
	}
	return out, max
}
