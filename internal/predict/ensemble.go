package predict

import (
	"fmt"
	"math"
)

// Ensemble is a Network-Weather-Service-style meta-forecaster (Wolski et
// al., the §8 related-work design): it maintains several candidate
// models and, per prediction, selects the one with the lowest trailing
// absolute error on the specific series being forecast. That adapts the
// model choice per node — a node in a calm regime gets the persistence
// model, a mean-reverting node gets AR(1), and so on — without any
// global assumption about which model is best.
type Ensemble struct {
	// Models are the fitted candidates. Fit trains all of them.
	Models []Forecaster
	// Window is how many trailing one-step errors to score (default 10).
	Window int
}

// NewDefaultEnsemble bundles the paper's model family.
func NewDefaultEnsemble(seed int64) *Ensemble {
	cfg := DefaultLSTMConfig()
	cfg.Seed = seed
	return &Ensemble{
		Models: []Forecaster{
			NewLSTM(cfg),
			&AR1{},
			&AR2{},
			&ARIMA111{},
			LastValue{},
		},
	}
}

// Name implements Forecaster.
func (e *Ensemble) Name() string { return fmt.Sprintf("ensemble(%d models)", len(e.Models)) }

// Fit trains every candidate on the same series.
func (e *Ensemble) Fit(series [][]float64) error {
	if len(e.Models) == 0 {
		return fmt.Errorf("predict: ensemble has no models")
	}
	for _, m := range e.Models {
		if err := m.Fit(series); err != nil {
			return fmt.Errorf("predict: ensemble fit %s: %w", m.Name(), err)
		}
	}
	return nil
}

// Predict scores each candidate by its trailing one-step error on this
// history and returns the best candidate's forecast.
func (e *Ensemble) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	if len(history) < 3 {
		return history[len(history)-1]
	}
	w := e.Window
	if w <= 0 {
		w = 10
	}
	start := len(history) - w
	if start < 2 {
		start = 2
	}
	best := 0
	bestErr := math.Inf(1)
	for mi, m := range e.Models {
		errSum := 0.0
		count := 0
		for t := start; t < len(history); t++ {
			p := m.Predict(history[:t])
			errSum += math.Abs(p - history[t])
			count++
		}
		if count == 0 {
			continue
		}
		if avg := errSum / float64(count); avg < bestErr {
			bestErr = avg
			best = mi
		}
	}
	return e.Models[best].Predict(history)
}

// BestModel reports which candidate the ensemble would select for a
// history (for diagnostics and tests).
func (e *Ensemble) BestModel(history []float64) string {
	if len(history) < 3 || len(e.Models) == 0 {
		return "last-value"
	}
	w := e.Window
	if w <= 0 {
		w = 10
	}
	start := len(history) - w
	if start < 2 {
		start = 2
	}
	best := 0
	bestErr := math.Inf(1)
	for mi, m := range e.Models {
		errSum := 0.0
		count := 0
		for t := start; t < len(history); t++ {
			errSum += math.Abs(m.Predict(history[:t]) - history[t])
			count++
		}
		if count > 0 && errSum/float64(count) < bestErr {
			bestErr = errSum / float64(count)
			best = mi
		}
	}
	return e.Models[best].Name()
}
