package experiments

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sim"
	"github.com/coded-computing/s2c2/internal/trace"
)

// cloudResult bundles the Figure 8/10 lineup outcome.
type cloudResult struct {
	names     []string
	latencies []float64
	// aggregates for the MDS(10,7) and S2C2(10,7) columns, feeding the
	// per-worker waste figures (9/11).
	mdsAgg, s2c2Agg *sim.Aggregate
	mispredS2C2     float64
}

// runCloudLineup executes the §7.2.1/§7.2.2 comparison: over-decomposition
// vs MDS{(8,7),(9,7),(10,7)} vs S2C2 with the same codes, on a 10-worker
// cloud trace with a fitted forecaster. Latencies are normalized to
// S2C2(10,7), matching the paper's presentation.
func runCloudLineup(c Config, gen func(workers, steps int, seed int64) *trace.Trace) (*cloudResult, error) {
	iters := c.iters()
	fc, err := fitForecaster(c, gen, 10)
	if err != nil {
		return nil, err
	}
	res := &cloudResult{}
	type entry struct {
		name string
		run  func(tr *trace.Trace, fc predict.Forecaster) (float64, *sim.Aggregate, error)
		keep string // "mds" or "s2c2" for (10,7) aggregates
	}
	coded := func(n, k int, s2c2 bool) func(tr *trace.Trace, fc predict.Forecaster) (float64, *sim.Aggregate, error) {
		return func(tr *trace.Trace, fc predict.Forecaster) (float64, *sim.Aggregate, error) {
			var factory sim.StrategyFactory
			if s2c2 {
				factory = sim.S2C2Factory(n, k, 0)
			} else {
				factory = sim.MDSFactory(n, k)
			}
			agg, err := runCodedJob(svmWorkload(c, 70), n, k, factory, fc, tr, iters)
			if err != nil {
				return 0, nil, err
			}
			return agg.MeanLatency(), agg, nil
		}
	}
	entries := []entry{
		{"over-decomposition", func(tr *trace.Trace, fc predict.Forecaster) (float64, *sim.Aggregate, error) {
			agg, _, err := runOverDecompJob(svmWorkload(c, 70), fc, tr, iters)
			if err != nil {
				return 0, nil, err
			}
			return agg.MeanLatency(), nil, nil
		}, ""},
		{"mds(8,7)", coded(8, 7, false), ""},
		{"mds(9,7)", coded(9, 7, false), ""},
		{"mds(10,7)", coded(10, 7, false), "mds"},
		{"s2c2(8,7)", coded(8, 7, true), ""},
		{"s2c2(9,7)", coded(9, 7, true), ""},
		{"s2c2(10,7)", coded(10, 7, true), "s2c2"},
	}
	for _, e := range entries {
		// Every strategy sees an identical environment: same seed, and the
		// 8/9-worker codes use the first workers of the same fleet.
		tr := gen(10, iters+5, c.Seed)
		if e.name == "mds(8,7)" || e.name == "s2c2(8,7)" {
			tr = subTrace(tr, 8)
		}
		if e.name == "mds(9,7)" || e.name == "s2c2(9,7)" {
			tr = subTrace(tr, 9)
		}
		lat, agg, err := e.run(tr, fc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		res.names = append(res.names, e.name)
		res.latencies = append(res.latencies, lat)
		switch e.keep {
		case "mds":
			res.mdsAgg = agg
		case "s2c2":
			res.s2c2Agg = agg
			res.mispredS2C2 = agg.MispredictionRate()
		}
	}
	return res, nil
}

// subTrace restricts a trace to its first n workers.
func subTrace(tr *trace.Trace, n int) *trace.Trace {
	return &trace.Trace{Speeds: tr.Speeds[:n]}
}

func cloudTable(title string, res *cloudResult, paperRow []string) *Table {
	base := res.latencies[len(res.latencies)-1] // s2c2(10,7)
	t := &Table{
		Title:   title,
		Headers: []string{"strategy", "relative time", "paper"},
		Notes: []string{
			fmt.Sprintf("normalized to s2c2(10,7); observed S2C2 mis-prediction rate %s", pct(res.mispredS2C2)),
		},
	}
	for i, name := range res.names {
		paper := "-"
		if i < len(paperRow) {
			paper = paperRow[i]
		}
		t.AddRow(name, f2(res.latencies[i]/base), paper)
	}
	return t
}

func wasteTable(title string, res *cloudResult) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"worker", "mds(10,7) wasted", "s2c2(10,7) wasted"},
		Notes:   []string{"wasted computation = assigned rows whose results the master discarded"},
	}
	for w := 0; w < 10; w++ {
		t.AddRow(fmt.Sprintf("worker%d", w+1),
			pct(res.mdsAgg.WastedFraction(w)),
			pct(res.s2c2Agg.WastedFraction(w)))
	}
	t.AddRow("cluster", pct(res.mdsAgg.TotalWastedFraction()), pct(res.s2c2Agg.TotalWastedFraction()))
	return t
}

// RunFig8CloudLow reproduces Figure 8 (low mis-prediction environment).
// Paper row: 1.00 / 1.36 / 1.31 / 1.39 / 1.23 / 1.09 / 1.00.
func RunFig8CloudLow(c Config) ([]*Table, error) {
	res, err := runCloudLineup(c, trace.CloudStable)
	if err != nil {
		return nil, err
	}
	lowCache[c.Seed] = res
	return []*Table{cloudTable(
		"Figure 8: SVM on cloud, low mis-prediction (relative execution time)",
		res, []string{"1.00", "1.36", "1.31", "1.39", "1.23", "1.09", "1.00"})}, nil
}

// RunFig9WasteLow reproduces Figure 9: per-worker wasted computation under
// (10,7) coding in the low-mis-prediction environment.
func RunFig9WasteLow(c Config) ([]*Table, error) {
	res, ok := lowCache[c.Seed]
	if !ok {
		var err error
		res, err = runCloudLineup(c, trace.CloudStable)
		if err != nil {
			return nil, err
		}
		lowCache[c.Seed] = res
	}
	return []*Table{wasteTable("Figure 9: wasted computation per worker, low mis-prediction", res)}, nil
}

// RunFig10CloudHigh reproduces Figure 10 (high mis-prediction).
// Paper row: 1.19 / 1.34 / 1.24 / 1.17 / 1.18 / 1.11 / 1.00.
func RunFig10CloudHigh(c Config) ([]*Table, error) {
	res, err := runCloudLineup(c, trace.CloudVolatile)
	if err != nil {
		return nil, err
	}
	highCache[c.Seed] = res
	return []*Table{cloudTable(
		"Figure 10: SVM on cloud, high mis-prediction (relative execution time)",
		res, []string{"1.19", "1.34", "1.24", "1.17", "1.18", "1.11", "1.00"})}, nil
}

// RunFig11WasteHigh reproduces Figure 11: per-worker wasted computation
// under (10,7) coding in the high-mis-prediction environment. Paper: the
// conservative MDS incurs 47% more waste than S2C2.
func RunFig11WasteHigh(c Config) ([]*Table, error) {
	res, ok := highCache[c.Seed]
	if !ok {
		var err error
		res, err = runCloudLineup(c, trace.CloudVolatile)
		if err != nil {
			return nil, err
		}
		highCache[c.Seed] = res
	}
	return []*Table{wasteTable("Figure 11: wasted computation per worker, high mis-prediction", res)}, nil
}

// lowCache/highCache let fig9/fig11 reuse fig8/fig10 runs when executed in
// the same process (the `all` path of cmd/s2c2-exp).
var (
	lowCache  = map[int64]*cloudResult{}
	highCache = map[int64]*cloudResult{}
)
