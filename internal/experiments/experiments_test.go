package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// fastConfig keeps every experiment under ~1s in tests.
func fastConfig() Config {
	return Config{Scale: 1, Iterations: 6, Seed: 42}
}

func TestAllRunnersProduceTables(t *testing.T) {
	for name, run := range Registry {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			tables, err := run(fastConfig())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", name)
			}
			for _, tb := range tables {
				out := tb.Render()
				if !strings.Contains(out, tb.Title) {
					t.Fatalf("%s: render missing title", name)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q has no rows", name, tb.Title)
				}
			}
		})
	}
}

// parse reads a rendered numeric cell back.
func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig8Shape(t *testing.T) {
	// The qualitative claims of Figure 8 must hold: all conventional MDS
	// variants are slower than s2c2(10,7); s2c2 latency decreases as
	// redundancy grows (8,7) → (10,7); over-decomposition is close to
	// s2c2(10,7) in the low-mis-prediction environment.
	tables, err := RunFig8CloudLow(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	get := func(name string) float64 {
		for _, r := range rows {
			if r[0] == name {
				return cellFloat(t, r[1])
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	for _, mds := range []string{"mds(8,7)", "mds(9,7)", "mds(10,7)"} {
		if get(mds) <= 1.02 {
			t.Fatalf("%s = %.2f should be clearly slower than s2c2(10,7)", mds, get(mds))
		}
	}
	if !(get("s2c2(8,7)") >= get("s2c2(9,7)") && get("s2c2(9,7)") >= get("s2c2(10,7)")) {
		t.Fatalf("s2c2 latency should fall with redundancy: %.2f %.2f %.2f",
			get("s2c2(8,7)"), get("s2c2(9,7)"), get("s2c2(10,7)"))
	}
	if get("over-decomposition") > 1.35 {
		t.Fatalf("over-decomposition = %.2f should be within ~35%% of s2c2(10,7) when predictions are good", get("over-decomposition"))
	}
}

func TestFig6Shape(t *testing.T) {
	// Figure 6 claims: (a) uncoded degrades sharply as stragglers exceed
	// the replication factor, (b) mds(12,10) blows up past 2 stragglers,
	// (c) s2c2(12,6) stays near-flat through 6 stragglers and beats
	// mds(12,6) at low straggler counts.
	tables, err := RunFig6LogisticRegression(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := func(name string) int {
		for i, h := range tb.Headers {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing", name)
		return -1
	}
	val := func(row int, name string) float64 { return cellFloat(t, tb.Rows[row][col(name)]) }

	if val(6, "uncoded-3rep+spec") < 2*val(0, "uncoded-3rep+spec") {
		t.Fatal("uncoded should degrade sharply by 6 stragglers")
	}
	if val(3, "mds(12,10)") < 1.5*val(2, "mds(12,10)") {
		t.Fatalf("mds(12,10) should blow up past 2 stragglers: %v -> %v",
			val(2, "mds(12,10)"), val(3, "mds(12,10)"))
	}
	if val(0, "s2c2(12,6)") >= val(0, "mds(12,6)") {
		t.Fatal("general s2c2 should beat conventional (12,6)-MDS with 0 stragglers")
	}
	// Flatness: s2c2 at 6 stragglers within 2.5x of its own 0-straggler value
	// (each straggler removes capacity, so some growth is expected).
	if val(6, "s2c2(12,6)") > 2.5*val(0, "s2c2(12,6)") {
		t.Fatalf("s2c2(12,6) not robust: %v @0 vs %v @6", val(0, "s2c2(12,6)"), val(6, "s2c2(12,6)"))
	}
}

func TestFig12Shape(t *testing.T) {
	tables, err := RunFig12Polynomial(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		conv := cellFloat(t, row[1])
		if conv <= 1.0 {
			t.Fatalf("%s: conventional poly (%.2f) should be slower than poly+s2c2", row[0], conv)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tables, err := RunFig13Scale(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		mds := cellFloat(t, row[1])
		if mds <= 1.0 {
			t.Fatalf("%s: mds(50,40) (%.2f) should be slower than s2c2(50,40)", row[0], mds)
		}
		if mds > 1.6 {
			t.Fatalf("%s: mds(50,40) (%.2f) exceeds the theoretical bound region (~1.25 ideal)", row[0], mds)
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bbbb"}, Notes: []string{"n"}}
	tb.AddRow("xxxxx", "y")
	out := tb.Render()
	if !strings.Contains(out, "note: n") {
		t.Fatal("missing note")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected render: %q", out)
	}
}
