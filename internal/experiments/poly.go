package experiments

import (
	"fmt"
	"math/rand"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/sim"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

// runPolyComparison executes the §7.2.3 Hessian workload (Aᵀ·diag(x)·A,
// a=b=3, 12 nodes, any 9 decode) under conventional polynomial coding and
// under S2C2, in one environment.
func runPolyComparison(c Config, gen func(workers, steps int, seed int64) *trace.Trace) (conv, s2c2 float64, mispred float64, err error) {
	iters := c.iters()
	s := c.scale()
	rng := rand.New(rand.NewSource(c.Seed))
	// Paper: 6000×6000; scaled-down default keeps the bench fast while
	// preserving the a·b structure.
	a := mat.Rand(120*s, 90*s, rng)
	code, err := coding.NewPolyCode(12, 3, 3)
	if err != nil {
		return 0, 0, 0, err
	}
	enc, err := code.EncodeHessian(a)
	if err != nil {
		return 0, 0, 0, err
	}
	fc, err := fitForecaster(c, gen, 12)
	if err != nil {
		return 0, 0, 0, err
	}
	run := func(strategy sched.Strategy, fc predict.Forecaster) (float64, float64, error) {
		tr := gen(12, iters+5, c.Seed)
		pc := &sim.PolyCluster{
			Enc: enc, Strategy: strategy, Forecaster: fc,
			Trace: tr, Comm: comm(), Timeout: timeout(),
		}
		agg := &sim.Aggregate{}
		d := make([]float64, a.Rows())
		for i := range d {
			d[i] = rng.Float64()
		}
		for iter := 0; iter < iters; iter++ {
			r, err := pc.RunIteration(iter, d)
			if err != nil {
				return 0, 0, err
			}
			agg.AddPolyRound(r)
		}
		return agg.MeanLatency(), agg.MispredictionRate(), nil
	}
	convLat, _, err := run(&sched.ConventionalMDS{N: 12, K: 9, BlockRows: enc.BlockColsA}, fc)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("conventional poly: %w", err)
	}
	s2c2Lat, mp, err := run(&sched.GeneralS2C2{N: 12, K: 9, BlockRows: enc.BlockColsA, Granularity: enc.BlockColsA}, fc)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("s2c2 poly: %w", err)
	}
	return convLat, s2c2Lat, mp, nil
}

// RunFig12Polynomial reproduces Figure 12: polynomial codes ± S2C2 under
// low and high mis-prediction. Paper: conventional is 1.19× (low) and
// 1.14× (high) of S2C2.
func RunFig12Polynomial(c Config) ([]*Table, error) {
	t := &Table{
		Title:   "Figure 12: Hessian (AᵀDA) with polynomial codes (12 nodes, a=b=3, any 9 decode)",
		Headers: []string{"environment", "conventional poly", "poly + s2c2", "paper conv", "mispred rate"},
		Notes:   []string{"normalized per environment to poly+s2c2; paper: 1.19 (low), 1.14 (high)"},
	}
	for _, env := range []struct {
		name  string
		gen   func(int, int, int64) *trace.Trace
		paper string
	}{
		{"low mis-prediction", trace.CloudStable, "1.19"},
		{"high mis-prediction", trace.CloudVolatile, "1.14"},
	} {
		conv, s2c2, mp, err := runPolyComparison(c, env.gen)
		if err != nil {
			return nil, err
		}
		t.AddRow(env.name, f2(conv/s2c2), "1.00", env.paper, pct(mp))
	}
	return []*Table{t}, nil
}

// RunFig13Scale reproduces Figure 13: SVM under (50,40) coding on a
// 51-node cluster, MDS vs S2C2, low and high mis-prediction. Paper:
// MDS is 1.25× (low) and 1.12× (high) of S2C2; the ideal low-mis-
// prediction gap is (50−40)/40 = 25%.
func RunFig13Scale(c Config) ([]*Table, error) {
	iters := c.iters()
	t := &Table{
		Title:   "Figure 13: SVM at scale, (50,40) coding on 50 workers",
		Headers: []string{"environment", "mds(50,40)", "s2c2(50,40)", "paper mds"},
		Notes:   []string{"normalized per environment to s2c2(50,40); paper: 1.25 (low), 1.12 (high)"},
	}
	for _, env := range []struct {
		name  string
		gen   func(int, int, int64) *trace.Trace
		paper string
	}{
		{"low mis-prediction", trace.CloudStable, "1.25"},
		{"high mis-prediction", trace.CloudVolatile, "1.12"},
	} {
		fc, err := fitForecaster(c, env.gen, 50)
		if err != nil {
			return nil, err
		}
		// A (50,40) code needs partitions large enough that chunk
		// quantization is negligible; the paper duplicated gisette (5000
		// features) for the same reason.
		s := c.scale()
		data := workloads.SyntheticClassification(1500*s, 600*s, c.Seed+1)
		svm := &workloads.SVM{Data: data, LR: 0.2, Lambda: 1e-3, Tol: 0}
		trM := env.gen(50, iters+5, c.Seed)
		mds, err := runCodedJob(svm, 50, 40, sim.MDSFactory(50, 40), fc, trM, iters)
		if err != nil {
			return nil, err
		}
		trS := env.gen(50, iters+5, c.Seed)
		s2c2, err := runCodedJob(svm, 50, 40, sim.S2C2Factory(50, 40, 0), fc, trS, iters)
		if err != nil {
			return nil, err
		}
		base := s2c2.MeanLatency()
		t.AddRow(env.name, f2(mds.MeanLatency()/base), "1.00", env.paper)
	}
	return []*Table{t}, nil
}
