package experiments

import (
	"github.com/coded-computing/s2c2/internal/workloads"
)

// The paper evaluates four §6.3 applications on the controlled cluster
// and reports that SVM tracks LR (§7.1.1) and graph filtering tracks
// PageRank (§7.1.2). These runners regenerate the unplotted halves so
// the similarity claim itself is checkable.

// RunFig6SVM is the SVM companion to Figure 6.
func RunFig6SVM(c Config) ([]*Table, error) {
	t, err := runControlledComparison(c, func() workloads.Iterative { return svmWorkload(c, 50) },
		"Figure 6 companion: SVM relative execution time vs stragglers (12 workers)")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper §7.1.1: SVM results are very similar to LR — compare with fig6")
	return []*Table{t}, nil
}

// RunFig7GraphFilter is the graph-filtering companion to Figure 7.
func RunFig7GraphFilter(c Config) ([]*Table, error) {
	t, err := runControlledComparison(c, func() workloads.Iterative {
		g := workloads.PowerLawGraph(240*c.scale(), 6, c.Seed+3)
		return &workloads.GraphFilter{Graph: g, Hops: c.iters()}
	}, "Figure 7 companion: n-hop graph filtering vs stragglers (12 workers)")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper §7.1.2: graph filtering results are very similar to PageRank — compare with fig7")
	return []*Table{t}, nil
}

func init() {
	Registry["fig6-svm"] = RunFig6SVM
	Registry["fig7-filter"] = RunFig7GraphFilter
}
