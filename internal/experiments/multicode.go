package experiments

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/sim"
	"github.com/coded-computing/s2c2/internal/trace"
)

// RunAblateMultiCode evaluates the §3.1 strawman the paper argues
// against: storing *multiple* encoded copies (a (12,10) and a (12,9)
// partition per worker) and switching per round based on the observed
// straggler count. It adapts to exactly two scenarios, pays the summed
// storage of every stored code, and still wastes slack within each code —
// whereas S2C2 stores one conservative code and adapts continuously.
func RunAblateMultiCode(c Config) ([]*Table, error) {
	iters := c.iters()
	lr := lrWorkload(c)
	x := lr.Init()
	matrices := lr.Matrices()

	type codedRun struct {
		k        int
		clusters []*sim.CodedCluster
	}
	mkClusters := func(k int, tr *trace.Trace) (*codedRun, error) {
		run := &codedRun{k: k}
		for _, m := range matrices {
			code, err := coding.NewMDSCode(12, k)
			if err != nil {
				return nil, err
			}
			enc := code.Encode(m)
			run.clusters = append(run.clusters, &sim.CodedCluster{
				Enc:      enc,
				Strategy: &sched.ConventionalMDS{N: 12, K: k, BlockRows: enc.BlockRows},
				Trace:    tr,
				Comm:     comm(),
				Timeout:  timeout(),
			})
		}
		return run, nil
	}

	t := &Table{
		Title:   "Ablation (§3.1 strawman): multi-code switching vs S2C2",
		Headers: []string{"stragglers", "multi-code {(12,10),(12,9)}", "s2c2(12,6)", "storage/node multi", "storage/node s2c2"},
		Notes: []string{
			"multi-code stores BOTH encodings (1/10 + 1/9 = 21.1% of data per node) yet only adapts to two scenarios",
			"s2c2 stores one (12,6) encoding (16.7%) and adapts to any straggler count and partial speeds",
			"latencies normalized to s2c2 @ 0 stragglers",
		},
	}
	var base float64
	for s := 0; s <= 3; s++ {
		tr := trace.ControlledCluster(12, s, iters+5, c.Seed+int64(300+s))
		run10, err := mkClusters(10, tr)
		if err != nil {
			return nil, err
		}
		run9, err := mkClusters(9, tr)
		if err != nil {
			return nil, err
		}
		multi := 0.0
		for iter := 0; iter < iters; iter++ {
			// Per-round code selection from predicted straggler count
			// (oracle speeds: straggler = below max/5).
			speeds := make([]float64, 12)
			max := 0.0
			for w := 0; w < 12; w++ {
				speeds[w] = tr.At(w, iter)
				if speeds[w] > max {
					max = speeds[w]
				}
			}
			stragglers := 0
			for _, sp := range speeds {
				if sp < max/5 {
					stragglers++
				}
			}
			chosen := run10
			if stragglers > 2 {
				chosen = run9
			}
			for p := range matrices {
				in := x // representative round: the product input doesn't affect timing
				r, err := chosen.clusters[p].RunIteration(iter, in)
				if err != nil {
					return nil, err
				}
				multi += r.Latency
			}
		}
		multi /= float64(iters)

		s2c2Agg, err := runCodedJob(lr, 12, 6, sim.S2C2Factory(12, 6, 0), nil, tr.Clone(), iters)
		if err != nil {
			return nil, err
		}
		if s == 0 {
			base = s2c2Agg.MeanLatency()
		}
		t.AddRow(fmt.Sprintf("%d", s),
			f2(multi/base), f2(s2c2Agg.MeanLatency()/base),
			pct(1.0/10+1.0/9), pct(1.0/6))
	}
	return []*Table{t}, nil
}

// RunLagrangeDemo exercises the Lagrange-coded-computing extension (§2's
// "broader use" direction): a degree-2 polynomial computed on coded data
// with straggler tolerance, reporting the recovery-threshold tradeoff.
func RunLagrangeDemo(c Config) ([]*Table, error) {
	t := &Table{
		Title:   "Extension: Lagrange coded computing — recovery thresholds",
		Headers: []string{"(n,k)", "degree", "threshold", "stragglers tolerated"},
		Notes:   []string{"threshold = (k−1)·deg+1 worker results decode f(X_j) for every block, bit-exact over GF(2³¹−1)"},
	}
	for _, cfg := range []struct{ n, k, d int }{
		{12, 6, 1}, {12, 6, 2}, {12, 4, 3}, {50, 10, 2},
	} {
		code, err := coding.NewLagrangeCode(cfg.n, cfg.k)
		if err != nil {
			return nil, err
		}
		th := code.RecoveryThreshold(cfg.d)
		t.AddRow(fmt.Sprintf("(%d,%d)", cfg.n, cfg.k), fmt.Sprintf("%d", cfg.d),
			fmt.Sprintf("%d", th), fmt.Sprintf("%d", cfg.n-th))
	}
	return []*Table{t}, nil
}

func init() {
	Registry["ablate-multicode"] = RunAblateMultiCode
	Registry["lagrange"] = RunLagrangeDemo
}
