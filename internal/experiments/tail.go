package experiments

import (
	"sort"

	"github.com/coded-computing/s2c2/internal/sim"
	"github.com/coded-computing/s2c2/internal/trace"
)

// RunTailLatency measures the iteration-latency distribution — the tail
// the paper's title is about. Stragglers inflate the high percentiles of
// uncoded and under-provisioned coded schemes; S2C2 keeps the whole
// distribution tight because every round adapts to the realised speeds.
func RunTailLatency(c Config) ([]*Table, error) {
	// More rounds than the figure runs so the percentiles are meaningful.
	iters := 10 * c.iters()
	svm := svmWorkload(c, 70)
	fc, err := fitForecaster(c, trace.CloudVolatile, 10)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Tail latency: per-iteration latency percentiles (volatile cloud, 10 workers)",
		Headers: []string{"strategy", "p50", "p90", "p99", "p99/p50"},
		Notes:   []string{"coded computing's purpose is the tail: compare p99/p50 tightness across strategies"},
	}
	type entry struct {
		name    string
		factory sim.StrategyFactory
	}
	for _, e := range []entry{
		{"mds(10,7)", sim.MDSFactory(10, 7)},
		{"s2c2-basic(10,7)", sim.BasicS2C2Factory(10, 7, 0)},
		{"s2c2(10,7)", sim.S2C2Factory(10, 7, 0)},
	} {
		tr := trace.CloudVolatile(10, iters+5, c.Seed)
		res, err := sim.RunIterative(svm, sim.JobConfig{
			N: 10, K: 7,
			Strategy:   e.factory,
			Forecaster: fc,
			Trace:      tr,
			Comm:       comm(),
			Timeout:    timeout(),
			MaxIter:    iters,
		})
		if err != nil {
			return nil, err
		}
		lat := append([]float64(nil), res.Aggregate.Latencies...)
		sort.Float64s(lat)
		p := func(q float64) float64 {
			idx := int(q * float64(len(lat)-1))
			return lat[idx]
		}
		t.AddRow(e.name, f3(p(0.50)), f3(p(0.90)), f3(p(0.99)), f2(p(0.99)/p(0.50)))
	}

	// The uncoded replication baseline on the same trace.
	tr := trace.CloudVolatile(10, iters+5, c.Seed)
	engines := []*sim.UncodedReplication{}
	for _, m := range svm.Matrices() {
		engines = append(engines, &sim.UncodedReplication{A: m, Trace: tr, Comm: comm()})
	}
	var lat []float64
	state := svm.Init()
	for iter := 0; iter < iters; iter++ {
		total := 0.0
		outputs := make([][]float64, len(engines))
		for p, eng := range engines {
			in := svm.PhaseInput(p, state, outputs[:p])
			r, err := eng.RunIteration(iter, in)
			if err != nil {
				return nil, err
			}
			outputs[p] = r.Result
			if outputs[p] == nil {
				outputs[p] = make([]float64, eng.A.Rows())
			}
			total += r.Latency
		}
		lat = append(lat, total)
		// Timing-only: keep the state fixed (latency is input-independent).
	}
	sort.Float64s(lat)
	p := func(q float64) float64 { return lat[int(q*float64(len(lat)-1))] }
	t.AddRow("uncoded-3rep+spec", f3(p(0.50)), f3(p(0.90)), f3(p(0.99)), f2(p(0.99)/p(0.50)))
	return []*Table{t}, nil
}

func init() {
	Registry["tail"] = RunTailLatency
}
