package experiments

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sim"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

// Runner is a named experiment producing one or more tables.
type Runner func(Config) ([]*Table, error)

// Registry maps experiment IDs (per DESIGN.md's experiment index) to
// their runners.
var Registry = map[string]Runner{
	"predict":        RunPredictorAccuracy,
	"fig1":           RunFig1Motivation,
	"fig2":           RunFig2Traces,
	"fig3":           RunFig3Storage,
	"fig6":           RunFig6LogisticRegression,
	"fig7":           RunFig7PageRank,
	"fig8":           RunFig8CloudLow,
	"fig9":           RunFig9WasteLow,
	"fig10":          RunFig10CloudHigh,
	"fig11":          RunFig11WasteHigh,
	"fig12":          RunFig12Polynomial,
	"fig13":          RunFig13Scale,
	"ablate-timeout": RunAblateTimeout,
	"ablate-gran":    RunAblateGranularity,
	"ablate-pred":    RunAblatePredictor,
	"ablate-layout":  RunAblateLayout,
}

// runCodedJob executes an Iterative workload under a coded strategy on
// the simulator and returns the aggregate.
func runCodedJob(w workloads.Iterative, n, k int, strat sim.StrategyFactory, fc predict.Forecaster, tr *trace.Trace, iters int) (*sim.Aggregate, error) {
	res, err := sim.RunIterative(w, sim.JobConfig{
		N: n, K: k,
		Strategy:   strat,
		Forecaster: fc,
		Trace:      tr,
		Comm:       comm(),
		Timeout:    timeout(),
		Numeric:    false,
		MaxIter:    iters,
	})
	if err != nil {
		return nil, err
	}
	return res.Aggregate, nil
}

// runUncodedJob executes an Iterative workload on the replication
// baseline: one UncodedReplication engine per phase, latencies summed per
// iteration, state advanced with locally computed products.
func runUncodedJob(w workloads.Iterative, tr *trace.Trace, iters int) (*uncodedAggregate, error) {
	matrices := w.Matrices()
	engines := make([]*sim.UncodedReplication, len(matrices))
	for p, m := range matrices {
		engines[p] = &sim.UncodedReplication{A: m, Trace: tr, Comm: comm()}
	}
	agg := &uncodedAggregate{}
	state := w.Init()
	for iter := 0; iter < iters; iter++ {
		outputs := make([][]float64, len(matrices))
		lat := 0.0
		for p, m := range matrices {
			in := w.PhaseInput(p, state, outputs[:p])
			r, err := engines[p].RunIteration(iter, in)
			if err != nil {
				return nil, err
			}
			outputs[p] = mat.MatVec(m, in)
			lat += r.Latency
			agg.Speculative += r.Speculative
			agg.DataMoves += r.DataMoves
			agg.BytesMoved += r.BytesMoved
		}
		agg.TotalLatency += lat
		agg.Rounds++
		state, _ = w.Update(state, outputs)
	}
	return agg, nil
}

// runOverDecompJob is runUncodedJob for the over-decomposition baseline.
func runOverDecompJob(w workloads.Iterative, fc predict.Forecaster, tr *trace.Trace, iters int) (*uncodedAggregate, []*sim.OverDecomposition, error) {
	matrices := w.Matrices()
	engines := make([]*sim.OverDecomposition, len(matrices))
	for p, m := range matrices {
		engines[p] = &sim.OverDecomposition{A: m, Trace: tr, Comm: comm(), Forecaster: fc}
	}
	agg := &uncodedAggregate{}
	state := w.Init()
	for iter := 0; iter < iters; iter++ {
		outputs := make([][]float64, len(matrices))
		lat := 0.0
		for p, m := range matrices {
			in := w.PhaseInput(p, state, outputs[:p])
			r, err := engines[p].RunIteration(iter, in)
			if err != nil {
				return nil, nil, err
			}
			outputs[p] = mat.MatVec(m, in)
			lat += r.Latency
			agg.DataMoves += r.Migrations
			agg.BytesMoved += r.BytesMoved
		}
		agg.TotalLatency += lat
		agg.Rounds++
		state, _ = w.Update(state, outputs)
	}
	return agg, engines, nil
}

// uncodedAggregate is the baseline-side counterpart of sim.Aggregate.
type uncodedAggregate struct {
	Rounds       int
	TotalLatency float64
	Speculative  int
	DataMoves    int
	BytesMoved   float64
}

// MeanLatency returns the average iteration latency.
func (a *uncodedAggregate) MeanLatency() float64 {
	if a.Rounds == 0 {
		return 0
	}
	return a.TotalLatency / float64(a.Rounds)
}

// lrWorkload builds the Figure 1/6 logistic-regression job at the config's
// scale.
func lrWorkload(c Config) *workloads.LogisticRegression {
	s := c.scale()
	data := workloads.SyntheticClassification(600*s, 50*s, c.Seed)
	return &workloads.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4, Tol: 0}
}

// svmWorkload builds the Figure 8/10/13 SVM job.
func svmWorkload(c Config, features int) *workloads.SVM {
	s := c.scale()
	data := workloads.SyntheticClassification(700*s, features*s, c.Seed+1)
	return &workloads.SVM{Data: data, LR: 0.2, Lambda: 1e-3, Tol: 0}
}

// prWorkload builds the Figure 7 PageRank job.
func prWorkload(c Config) *workloads.PageRank {
	g := workloads.PowerLawGraph(240*c.scale(), 6, c.Seed+2)
	return &workloads.PageRank{Graph: g, Damping: 0.85, Tol: 0}
}

// fitForecaster trains the configured predictor on a disjoint trace drawn
// from the same environment generator.
func fitForecaster(c Config, gen func(workers, steps int, seed int64) *trace.Trace, workers int) (predict.Forecaster, error) {
	train := gen(workers, 200, c.Seed+1000)
	f, err := c.forecaster(train.Speeds)
	if err != nil {
		return nil, fmt.Errorf("experiments: fitting forecaster: %w", err)
	}
	return f, nil
}
