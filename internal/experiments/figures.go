package experiments

import (
	"fmt"
	"math"

	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sim"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

// RunPredictorAccuracy reproduces §6.1: MAPE of the LSTM vs the ARIMA
// family on held-out speed data (80:20 split). Paper: LSTM 16.7%, 5
// points better than ARIMA(1,0,0).
func RunPredictorAccuracy(c Config) ([]*Table, error) {
	tr := trace.DigitalOceanLike(24, 150*c.scale(), c.Seed)
	lstmCfg := predict.DefaultLSTMConfig()
	lstmCfg.Seed = c.Seed
	lstmCfg.Epochs = 30 * c.scale()
	models := []predict.Forecaster{
		predict.NewLSTM(lstmCfg),
		&predict.AR1{},
		&predict.AR2{},
		&predict.ARIMA111{},
		predict.LastValue{},
		// NWS-style per-node model selection (extension; §8 related work).
		&predict.Ensemble{Models: []predict.Forecaster{
			&predict.AR1{}, &predict.AR2{}, &predict.ARIMA111{}, predict.LastValue{},
		}},
	}
	t := &Table{
		Title:   "E0 (§6.1): one-step speed-prediction error, 80:20 split",
		Headers: []string{"model", "MAPE"},
		Notes: []string{
			"paper: LSTM 16.7% MAPE on measured droplet traces, 5pts better than ARIMA(1,0,0)",
			"traces here are synthetic (DESIGN.md §2); relative ordering is the reproduced result",
		},
	}
	for _, m := range models {
		mape, err := predict.Evaluate(m, tr.Speeds, 0.8)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name(), pct(mape))
	}
	return []*Table{t}, nil
}

// RunFig1Motivation reproduces Figure 1: logistic-regression latency for
// uncoded-3-replication, (12,10)-MDS and (12,9)-MDS as stragglers grow
// from 0 to 3 on a 12-worker cluster.
func RunFig1Motivation(c Config) ([]*Table, error) {
	lr := lrWorkload(c)
	iters := c.iters()
	t := &Table{
		Title:   "Figure 1: LR computation latency vs stragglers (normalized to uncoded @ 0)",
		Headers: []string{"stragglers", "uncoded-3rep", "mds(12,10)", "mds(12,9)"},
		Notes:   []string{"paper shape: uncoded degrades sharply ≥3; (12,10) degrades >2; (12,9) flat but higher baseline"},
	}
	var base float64
	for s := 0; s <= 3; s++ {
		tr := trace.ControlledCluster(12, s, iters+5, c.Seed+int64(s))
		unc, err := runUncodedJob(lr, tr, iters)
		if err != nil {
			return nil, err
		}
		mds10, err := runCodedJob(lr, 12, 10, sim.MDSFactory(12, 10), nil, tr.Clone(), iters)
		if err != nil {
			return nil, err
		}
		mds9, err := runCodedJob(lr, 12, 9, sim.MDSFactory(12, 9), nil, tr.Clone(), iters)
		if err != nil {
			return nil, err
		}
		if s == 0 {
			base = unc.MeanLatency()
		}
		t.AddRow(fmt.Sprintf("%d", s),
			f2(unc.MeanLatency()/base),
			f2(mds10.MeanLatency()/base),
			f2(mds9.MeanLatency()/base))
	}
	return []*Table{t}, nil
}

// RunFig2Traces reproduces Figure 2's measurement campaign: per-node
// speed traces with slow drift and occasional regime shifts. The table
// summarises four representative nodes; the raw series can be exported as
// CSV via cmd/s2c2-exp -csv.
func RunFig2Traces(c Config) ([]*Table, error) {
	tr := trace.DigitalOceanLike(100, 100*c.scale(), c.Seed)
	reps := []int{0, 7, 24, 61} // a straggler-episode node and three others
	t := &Table{
		Title:   "Figure 2: representative node speed traces (speed normalized to node max)",
		Headers: []string{"node", "mean", "min", "max", "mean |Δ|/step", "10-step drift"},
		Notes: []string{
			"paper observation: speed stays within ~10% over ~10-sample neighbourhoods",
		},
	}
	for _, w := range reps {
		s := tr.Row(w)
		max := 0.0
		for _, v := range s {
			max = math.Max(max, v)
		}
		mean, lo, step := 0.0, math.Inf(1), 0.0
		for i, v := range s {
			mean += v / max
			lo = math.Min(lo, v/max)
			if i > 0 {
				step += math.Abs(v-s[i-1]) / s[i-1]
			}
		}
		mean /= float64(len(s))
		step /= float64(len(s) - 1)
		// Mean relative change across a 10-step window.
		drift := 0.0
		cnt := 0
		for i := 10; i < len(s); i++ {
			drift += math.Abs(s[i]-s[i-10]) / s[i-10]
			cnt++
		}
		drift /= float64(cnt)
		t.AddRow(fmt.Sprintf("worker%d", w), f3(mean), f3(lo), "1.000", pct(step), pct(drift))
	}
	return []*Table{t}, nil
}

// RunFig3Storage reproduces Figure 3: per-node effective storage needed
// to avoid data movement, uncoded-with-prediction vs S2C2, across 270
// gradient-descent iterations. Paper: uncoded converges to ~67% of the
// full data per node; S2C2 with (12,10) coding stays fixed at 10%.
func RunFig3Storage(c Config) ([]*Table, error) {
	iters := 270
	sample := 30
	s := c.scale()
	data := workloads.SyntheticClassification(240*s, 20*s, c.Seed)
	lr := &workloads.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4, Tol: 0}
	tr := trace.CloudVolatile(12, iters+5, c.Seed)
	fc, err := fitForecaster(c, trace.CloudVolatile, 12)
	if err != nil {
		return nil, err
	}
	// Uncoded with perfect load-balance: the over-decomposition engine
	// tracks every partition a node ever hosts.
	_, engines, err := runOverDecompJob(lr, fc, tr, iters)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 3: mean per-node storage to avoid data movement (fraction of full data)",
		Headers: []string{"iteration", "uncoded (prediction + migration)", "s2c2 (12,10)-MDS"},
		Notes:   []string{"paper: uncoded needs 67% of data per node by iteration 270; S2C2 fixed at 1/k = 10%"},
	}
	// Sample storage growth by re-running in stages (engines accumulate
	// state, so we re-run from scratch for each sample point).
	for at := sample; at <= iters; at += sample * 2 {
		tr2 := trace.CloudVolatile(12, iters+5, c.Seed)
		_, engs, err := runOverDecompJob(lr, fc, tr2, at)
		if err != nil {
			return nil, err
		}
		frac := 0.0
		for _, e := range engs {
			fs := e.StorageFractions()
			m := 0.0
			for _, f := range fs {
				m += f
			}
			frac += m / float64(len(fs))
		}
		frac /= float64(len(engs))
		t.AddRow(fmt.Sprintf("%d", at), pct(frac), pct(0.10))
	}
	_ = engines
	return []*Table{t}, nil
}

// strategyColumns is the Figure 6/7 strategy lineup.
func strategyColumns(n, kAggressive, kConservative, granularity int) []struct {
	name    string
	factory sim.StrategyFactory
	k       int
} {
	return []struct {
		name    string
		factory sim.StrategyFactory
		k       int
	}{
		{fmt.Sprintf("mds(%d,%d)", n, kAggressive), sim.MDSFactory(n, kAggressive), kAggressive},
		{fmt.Sprintf("mds(%d,%d)", n, kConservative), sim.MDSFactory(n, kConservative), kConservative},
		{fmt.Sprintf("s2c2-basic(%d,%d)", n, kConservative), sim.BasicS2C2Factory(n, kConservative, granularity), kConservative},
		{fmt.Sprintf("s2c2(%d,%d)", n, kConservative), sim.S2C2Factory(n, kConservative, granularity), kConservative},
	}
}

// runControlledComparison renders the Figure 6/7 layout for a workload:
// relative execution time vs straggler count for the five strategies on
// the 12-worker controlled cluster.
func runControlledComparison(c Config, w func() workloads.Iterative, title string) (*Table, error) {
	iters := c.iters()
	cols := strategyColumns(12, 10, 6, 120)
	t := &Table{
		Title:   title,
		Headers: append([]string{"stragglers", "uncoded-3rep+spec"}, colNames(cols)...),
		Notes: []string{
			"normalized to uncoded @ 0 stragglers",
			"coded strategies use oracle speeds for basic/conventional rows and exact speeds for general S2C2 (the paper's 'knowing the exact speeds')",
		},
	}
	var base float64
	for s := 0; s <= 6; s++ {
		tr := trace.ControlledCluster(12, s, iters+5, c.Seed+int64(100+s))
		unc, err := runUncodedJob(w(), tr, iters)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", s)}
		if s == 0 {
			base = unc.MeanLatency()
		}
		row = append(row, f2(unc.MeanLatency()/base))
		for _, col := range cols {
			agg, err := runCodedJob(w(), 12, col.k, col.factory, nil, tr.Clone(), iters)
			if err != nil {
				// Conventional/basic coding cannot tolerate more stragglers
				// than n−k only when fewer than k workers remain usable;
				// report the blow-up as the straggler-bound latency.
				return nil, fmt.Errorf("%s @ %d stragglers: %w", col.name, s, err)
			}
			row = append(row, f2(agg.MeanLatency()/base))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func colNames(cols []struct {
	name    string
	factory sim.StrategyFactory
	k       int
}) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.name
	}
	return out
}

// RunFig6LogisticRegression reproduces Figure 6.
func RunFig6LogisticRegression(c Config) ([]*Table, error) {
	t, err := runControlledComparison(c, func() workloads.Iterative { return lrWorkload(c) },
		"Figure 6: LR relative execution time vs stragglers (12 workers)")
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// RunFig7PageRank reproduces Figure 7.
func RunFig7PageRank(c Config) ([]*Table, error) {
	t, err := runControlledComparison(c, func() workloads.Iterative { return prWorkload(c) },
		"Figure 7: PageRank relative execution time vs stragglers (12 workers)")
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}
