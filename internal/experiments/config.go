package experiments

import (
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sim"
)

// Config scales every experiment. The defaults run each figure in well
// under a second so the whole suite regenerates quickly; Scale multiplies
// problem sizes toward the paper's dimensions when more fidelity is
// wanted (e.g. `s2c2-exp -scale 4`).
type Config struct {
	// Scale multiplies dataset dimensions (1 = fast defaults).
	Scale int
	// Iterations per job (the paper reports 15-iteration averages).
	Iterations int
	// Seed drives every generator for exact reproducibility.
	Seed int64
	// UseLSTM selects the LSTM forecaster for prediction-driven runs
	// (slower); false uses AR(1), the paper's best ARIMA baseline.
	UseLSTM bool
}

// DefaultConfig returns the fast-run configuration.
func DefaultConfig() Config {
	return Config{Scale: 1, Iterations: 15, Seed: 42}
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

func (c Config) iters() int {
	if c.Iterations < 1 {
		return 15
	}
	return c.Iterations
}

// forecaster builds the configured prediction model, pre-fitted on a
// training trace (the paper trains offline on measured droplet data).
func (c Config) forecaster(trainSeries [][]float64) (predict.Forecaster, error) {
	var f predict.Forecaster
	if c.UseLSTM {
		cfg := predict.DefaultLSTMConfig()
		cfg.Seed = c.Seed
		cfg.Epochs = 30
		f = predict.NewLSTM(cfg)
	} else {
		f = &predict.AR1{}
	}
	if err := f.Fit(trainSeries); err != nil {
		return nil, err
	}
	return f, nil
}

func comm() sim.CommModel        { return sim.DefaultComm() }
func timeout() sim.TimeoutPolicy { return sim.DefaultTimeout() }
