package experiments

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/coding"

	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/sim"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

// Ablation studies for the design choices DESIGN.md §6 calls out. These
// go beyond the paper's figures: they quantify why S2C2's specific
// parameter choices (15% timeout, chunked cyclic layout, over-
// decomposition granularity, LSTM predictor) matter.

// RunAblateTimeout sweeps the §4.3 timeout fraction in a volatile
// environment: too tight re-executes work that was about to arrive, too
// loose waits on genuinely dead workers.
func RunAblateTimeout(c Config) ([]*Table, error) {
	iters := c.iters()
	fc, err := fitForecaster(c, trace.CloudVolatile, 10)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: timeout fraction (paper picks 15% ≈ predictor MAPE)",
		Headers: []string{"timeout", "mean latency", "mispred rate", "reassigned rows/iter"},
	}
	svm := svmWorkload(c, 70)
	for _, frac := range []float64{0.05, 0.10, 0.15, 0.25, 0.50} {
		tr := trace.CloudVolatile(10, iters+5, c.Seed)
		res, err := sim.RunIterative(svm, sim.JobConfig{
			N: 10, K: 7,
			Strategy:   sim.S2C2Factory(10, 7, 0),
			Forecaster: fc,
			Trace:      tr,
			Comm:       comm(),
			Timeout:    sim.TimeoutPolicy{Fraction: frac},
			MaxIter:    iters,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(pct(frac), f3(res.Aggregate.MeanLatency()),
			pct(res.Aggregate.MispredictionRate()),
			f1(float64(res.Aggregate.ReassignedRows)/float64(res.Aggregate.Rounds)))
	}
	return []*Table{t}, nil
}

// RunAblateGranularity sweeps the over-decomposition factor of Algorithm
// 1: more chunks track speeds more precisely but give diminishing
// returns.
func RunAblateGranularity(c Config) ([]*Table, error) {
	iters := c.iters()
	t := &Table{
		Title:   "Ablation: Algorithm-1 chunk granularity (chunks per partition)",
		Headers: []string{"granularity", "mean latency", "mispred rate"},
		Notes:   []string{"oracle speeds; quantization error shrinks as granularity grows"},
	}
	svm := svmWorkload(c, 70)
	for _, g := range []int{5, 10, 20, 40, 80} {
		tr := trace.CloudStable(10, iters+5, c.Seed)
		res, err := sim.RunIterative(svm, sim.JobConfig{
			N: 10, K: 7,
			Strategy: sim.S2C2Factory(10, 7, g),
			Trace:    tr,
			Comm:     comm(),
			Timeout:  timeout(),
			MaxIter:  iters,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", g), f3(res.Aggregate.MeanLatency()),
			pct(res.Aggregate.MispredictionRate()))
	}
	return []*Table{t}, nil
}

// RunAblatePredictor compares end-to-end latency under different speed
// predictors, isolating how much the LSTM buys over simpler models.
func RunAblatePredictor(c Config) ([]*Table, error) {
	iters := c.iters()
	train := trace.CloudVolatile(10, 200, c.Seed+1000)
	lstmCfg := predict.DefaultLSTMConfig()
	lstmCfg.Seed = c.Seed
	lstmCfg.Epochs = 30
	models := []predict.Forecaster{
		nil, // oracle
		predict.NewLSTM(lstmCfg),
		&predict.AR1{},
		predict.LastValue{},
		&predict.Ensemble{Models: []predict.Forecaster{
			&predict.AR1{}, &predict.AR2{}, predict.LastValue{},
		}},
	}
	names := []string{"oracle (exact speeds)", "lstm(h=4)", "arima(1,0,0)", "last-value", "nws-ensemble"}
	t := &Table{
		Title:   "Ablation: speed predictor vs end-to-end S2C2 latency (volatile cloud)",
		Headers: []string{"predictor", "mean latency", "mispred rate"},
	}
	svm := svmWorkload(c, 70)
	for i, m := range models {
		if m != nil {
			if err := m.Fit(train.Speeds); err != nil {
				return nil, err
			}
		}
		tr := trace.CloudVolatile(10, iters+5, c.Seed)
		res, err := sim.RunIterative(svm, sim.JobConfig{
			N: 10, K: 7,
			Strategy:   sim.S2C2Factory(10, 7, 0),
			Forecaster: m,
			Trace:      tr,
			Comm:       comm(),
			Timeout:    timeout(),
			MaxIter:    iters,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(names[i], f3(res.Aggregate.MeanLatency()), pct(res.Aggregate.MispredictionRate()))
	}
	return []*Table{t}, nil
}

// naiveContiguous is a deliberately broken allocator: workers get
// speed-proportional *contiguous* ranges all starting at row 0, without
// Algorithm 1's cyclic layout. It demonstrates why the cyclic interval
// structure is load-bearing.
type naiveContiguous struct {
	n, k, blockRows int
}

func (s *naiveContiguous) Name() string { return "naive-contiguous" }
func (s *naiveContiguous) NeedK() int   { return s.k }

// Plan implements the broken layout.
func (s *naiveContiguous) Plan(speeds []float64) (*sched.Plan, error) {
	alloc, err := sched.AllocateChunks(speeds, s.k, s.blockRows)
	if err != nil {
		return nil, err
	}
	p := &sched.Plan{BlockRows: s.blockRows, Assignments: make([][]coding.Range, s.n)}
	for w := 0; w < s.n; w++ {
		if alloc[w] > 0 {
			p.Assignments[w] = []coding.Range{{Lo: 0, Hi: alloc[w]}}
		}
	}
	return p, nil
}

// RunAblateLayout quantifies the cyclic-layout design choice: the naive
// contiguous allocator assigns the same leading rows to everyone, leaving
// tail rows under-covered, so rounds routinely need timeout recovery.
func RunAblateLayout(c Config) ([]*Table, error) {
	iters := c.iters()
	workload := func() workloads.Iterative { return prWorkload(c) }
	t := &Table{
		Title:   "Ablation: Algorithm-1 cyclic layout vs naive contiguous assignment",
		Headers: []string{"layout", "mean latency", "mispred (recovery) rate", "reassigned rows/iter"},
		Notes:   []string{"naive layout under-covers tail rows; every round falls back to timeout recovery"},
	}
	tr := trace.CloudStable(10, iters+5, c.Seed)
	cyc, err := sim.RunIterative(workload(), sim.JobConfig{
		N: 10, K: 7, Strategy: sim.S2C2Factory(10, 7, 0),
		Trace: tr, Comm: comm(), Timeout: timeout(), MaxIter: iters,
	})
	if err != nil {
		return nil, err
	}
	tr2 := trace.CloudStable(10, iters+5, c.Seed)
	naive, err := sim.RunIterative(workload(), sim.JobConfig{
		N: 10, K: 7,
		Strategy: func(blockRows int) sched.Strategy {
			return &naiveContiguous{n: 10, k: 7, blockRows: blockRows}
		},
		Trace: tr2, Comm: comm(), Timeout: timeout(), MaxIter: iters,
	})
	if err != nil {
		return nil, err
	}
	add := func(name string, r *sim.JobResult) {
		t.AddRow(name, f3(r.Aggregate.MeanLatency()),
			pct(r.Aggregate.MispredictionRate()),
			f1(float64(r.Aggregate.ReassignedRows)/float64(r.Aggregate.Rounds)))
	}
	add("cyclic (Algorithm 1)", cyc)
	add("naive contiguous", naive)
	return []*Table{t}, nil
}
