// Package experiments contains one runner per evaluation artifact of the
// paper (Figures 1–13 plus the §6.1 predictor-accuracy numbers) and the
// ablation studies listed in DESIGN.md §6. Each runner builds its
// workload, drives the simulator, and renders an ASCII table whose rows
// mirror the corresponding figure's series, so `cmd/s2c2-exp` and the
// benchmark harness regenerate the paper's results. EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carries methodology caveats printed under the table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render pretty-prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// f2 formats a float with 2 decimals; f3 with 3; f1 with 1.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
