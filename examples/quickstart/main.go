// Quickstart: one coded mat-vec round with S2C2, end to end.
//
// A 12-row matrix is encoded with a (4,2)-MDS code — the Figure 4 setup
// of the paper. Worker 3 is a straggler, so S2C2 assigns the other three
// workers 2/3 of their partitions each (cyclically, so every row index is
// covered by exactly k=2 workers), and the master decodes the exact
// product without ever waiting for the straggler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	s2c2 "github.com/coded-computing/s2c2"
)

func main() {
	// The data matrix A and input vector x of A·x.
	a := s2c2.NewDenseFromRows([][]float64{
		{1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}, {3, 1},
		{1, 3}, {2, 2}, {4, 1}, {1, 4}, {2, 3}, {3, 2},
	})
	x := []float64{10, 1}

	// Encode once with a conservative (4,2)-MDS code: partitions 0 and 1
	// are systematic; 2 and 3 are Cauchy parity. Any 2 of 4 decode.
	code, err := s2c2.NewMDSCode(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	enc := code.Encode(a)
	fmt.Printf("encoded %d rows into %d partitions of %d rows\n",
		a.Rows(), code.N(), enc.BlockRows)

	// Predicted speeds for this round: workers 0-2 healthy, worker 3 a
	// deep straggler. Algorithm 1 assigns work proportionally.
	speeds := []float64{1, 1, 1, 0.02}
	strat := &s2c2.GeneralS2C2{N: 4, K: 2, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan(speeds)
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		fmt.Printf("worker %d (speed %.2f): %d/%d rows %v\n",
			w, speeds[w], plan.RowsFor(w), enc.BlockRows, plan.Assignments[w])
	}

	// Each worker runs its kernel over only its assigned ranges.
	var partials []*s2c2.Partial
	for w := 0; w < 4; w++ {
		if plan.RowsFor(w) > 0 {
			partials = append(partials, enc.WorkerCompute(w, x, plan.Assignments[w]))
		}
	}

	// The master decodes every output row from the k workers covering it.
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		log.Fatal(err)
	}
	want := s2c2.MatVec(a, x)
	fmt.Println("decoded :", vec(got))
	fmt.Println("expected:", vec(want))
}

func vec(v []float64) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = int(x + 0.5)
	}
	return out
}
