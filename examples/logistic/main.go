// Logistic regression under injected stragglers — the paper's §7.1.1
// experiment at laptop scale.
//
// The same gradient-descent job runs three times on an identical
// simulated 12-worker cluster with 2 stragglers:
//
//  1. conventional (12,10)-MDS (can tolerate exactly 2 stragglers),
//  2. conventional (12,6)-MDS (conservative, pays 67% extra work/worker),
//  3. general S2C2 on the same (12,6) code (conservative robustness,
//     but squeezes the slack: latency tracks the healthy capacity).
//
// All three produce the same model; only latency and waste differ.
//
//	go run ./examples/logistic
package main

import (
	"fmt"
	"log"

	s2c2 "github.com/coded-computing/s2c2"
)

func main() {
	const (
		workers    = 12
		stragglers = 2
		iterations = 15
	)
	data := s2c2.NewClassificationDataset(1200, 96, 7)
	mkJob := func() *s2c2.LogisticRegression {
		return &s2c2.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4}
	}

	configs := []struct {
		name string
		k    int
		s2c2 bool
	}{
		{"conventional (12,10)-MDS", 10, false},
		{"conventional (12,6)-MDS", 6, false},
		{"general S2C2 on (12,6)", 6, true},
	}
	fmt.Printf("12 workers, %d stragglers (5x slow), %d GD iterations\n\n", stragglers, iterations)
	var model []float64
	for _, cfg := range configs {
		tr := s2c2.ControlledCluster(workers, stragglers, iterations+5, 7)
		strat := s2c2.MDSStrategy(workers, cfg.k)
		if cfg.s2c2 {
			strat = s2c2.S2C2Strategy(workers, cfg.k, 0)
		}
		res, err := s2c2.Simulate(mkJob(), s2c2.SimConfig{
			N: workers, K: cfg.k,
			Strategy: strat,
			Trace:    tr,
			Numeric:  true, // really encode/compute/decode every round
			MaxIter:  iterations,
		})
		if err != nil {
			log.Fatal(err)
		}
		lr := mkJob()
		fmt.Printf("%-26s  mean iter latency %8.2fms   wasted compute %5.1f%%   final acc %.3f\n",
			cfg.name,
			res.Aggregate.MeanLatency()*1000,
			100*res.Aggregate.TotalWastedFraction(),
			lr.Accuracy(res.State))
		model = res.State
	}

	local, _ := s2c2.RunLocal(mkJob(), iterations)
	maxDiff := 0.0
	for i := range local {
		d := model[i] - local[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax |coded - local| model coefficient difference: %.2e\n", maxDiff)
}
