// Exactround: bit-exact distributed rounds over GF(2³¹−1) on a real
// loopback TCP cluster — the property the float64 wire path cannot give.
//
// Two legs run against the same four-worker cluster (one 8× straggler):
//
//  1. An exact (4,3)-MDS round: a field matrix is Vandermonde-encoded,
//     streamed to the workers as uint32 partitions, and each round's
//     distributed A·x is compared element-for-element — not within a
//     tolerance — against the local field compute, including rounds where
//     the straggler trips the §4.3 timeout and rows are reassigned.
//
//  2. A Lagrange leg: the matrix's k row blocks are Lagrange-encoded,
//     each worker's share ships as an exact partition, every worker
//     evaluates its share against x (a degree-1 polynomial of the share),
//     and any RecoveryThreshold(1) complete results interpolate the block
//     products exactly — multiparty exact evaluation end to end.
//
//     go run ./examples/exactround
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	s2c2 "github.com/coded-computing/s2c2"
)

func main() {
	const (
		n, k   = 4, 3
		rows   = 120
		cols   = 16
		rounds = 5
	)
	master, err := s2c2.NewMasterWithConfig(s2c2.MasterConfig{
		Addr:         "127.0.0.1:0",
		StallTimeout: 10 * time.Second,
		ChunkRows:    16, // stream exact partitions in 16-row chunks
	})
	if err != nil {
		log.Fatal(err)
	}
	defer master.Shutdown()

	for i := 0; i < n; i++ {
		slow := 1.0
		if i == 3 {
			slow = 8.0
		}
		cfg := s2c2.WorkerConfig{
			MasterAddr:  master.Addr(),
			Slowdown:    slow,
			PerRowDelay: 100 * time.Microsecond,
		}
		go func() {
			w, err := s2c2.NewWorker(cfg)
			if err != nil {
				log.Fatal(err)
			}
			_ = w.Run()
		}()
		if err := master.WaitForWorkers(i+1, 10*time.Second); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cluster up: %d workers (worker 3 runs 8x slow)\n", n)

	// Integer payload reduced into the field; its exact products are the
	// ground truth every distributed round must reproduce bit for bit.
	rng := rand.New(rand.NewSource(42))
	data := make([]s2c2.GFElem, rows*cols)
	for i := range data {
		data[i] = s2c2.NewGFElem(rng.Uint64())
	}
	local := s2c2.NewGFMatrixFromData(rows, cols, data)

	// ---- Leg 1: exact (n,k)-MDS rounds with S2C2 assignment ------------
	code, err := s2c2.NewGFMDSCode(n, k)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		log.Fatal(err)
	}
	if err := master.DistributeGFPartitions(0, enc.Parts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed %d exact GF(2^31-1) partitions of %d rows\n", n, enc.BlockRows)

	strat := &s2c2.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows}
	speeds := []float64{1, 1, 1, 1}
	x := make([]s2c2.GFElem, cols)
	want := make([]s2c2.GFElem, rows)
	for iter := 0; iter < rounds; iter++ {
		for i := range x {
			x[i] = s2c2.NewGFElem(rng.Uint64())
		}
		local.MulVecInto(want, x)
		plan, err := strat.Plan(speeds)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		partials, stats, err := master.RunGFRound(iter, 0, x, plan, k, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			log.Fatal(err)
		}
		for r := range want {
			if got[r] != want[r] {
				log.Fatalf("round %d row %d: distributed %d != local %d — exactness violated",
					iter, r, got[r], want[r])
			}
		}
		for w := 0; w < n; w++ {
			if stats.ResponseTime[w] > 0 && stats.AssignedRows[w] > 0 {
				speeds[w] = float64(stats.AssignedRows[w]) / stats.ResponseTime[w].Seconds()
			}
		}
		fmt.Printf("round %d: %6.1fms  rows/worker %v  timed-out %v  bit-exact\n",
			iter, float64(time.Since(start).Microseconds())/1000,
			stats.AssignedRows, stats.TimedOut)
	}

	// ---- Leg 2: Lagrange shares as exact partitions --------------------
	lag, err := s2c2.NewLagrangeCode(n, k)
	if err != nil {
		log.Fatal(err)
	}
	blockRows := (rows + k - 1) / k
	blocks := make([][]s2c2.GFElem, k)
	for b := range blocks {
		blocks[b] = make([]s2c2.GFElem, blockRows*cols)
		for r := 0; r < blockRows; r++ {
			if src := b*blockRows + r; src < rows {
				copy(blocks[b][r*cols:(r+1)*cols], data[src*cols:(src+1)*cols])
			}
		}
	}
	shares, err := lag.Encode(blocks)
	if err != nil {
		log.Fatal(err)
	}
	parts := make([]*s2c2.GFMatrix, n)
	for i, s := range shares {
		parts[i] = s2c2.NewGFMatrixFromData(blockRows, cols, s)
	}
	if err := master.DistributeGFPartitions(1, parts); err != nil {
		log.Fatal(err)
	}
	// Every worker evaluates its whole share; any threshold-many complete
	// results decode.
	assignments := make([][]s2c2.Range, n)
	for w := range assignments {
		assignments[w] = []s2c2.Range{{Lo: 0, Hi: blockRows}}
	}
	plan := &s2c2.Plan{BlockRows: blockRows, Assignments: assignments}
	threshold := lag.RecoveryThreshold(1)
	for i := range x {
		x[i] = s2c2.NewGFElem(rng.Uint64())
	}
	local.MulVecInto(want, x)
	partials, _, err := master.RunGFRound(0, 1, x, plan, threshold, 10.0)
	if err != nil {
		log.Fatal(err)
	}
	results, err := s2c2.CompleteGFShares(partials, blockRows)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := lag.Decode(results, 1)
	if err != nil {
		log.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		if decoded[r/blockRows][r%blockRows] != want[r] {
			log.Fatalf("Lagrange row %d: distributed %d != local %d",
				r, decoded[r/blockRows][r%blockRows], want[r])
		}
	}
	fmt.Printf("Lagrange leg: %d of %d shares interpolated A·x bit-exactly\n", threshold, n)
	fmt.Println("every distributed result matched the local field compute bit for bit")
}
