// Failover: a worker dies mid-job and the cluster heals around it.
//
// A 4-worker (k=3) loopback cluster runs iterative coded mat-vec rounds
// while two failures are injected: worker 2 is killed between rounds and
// replaced from the spare pool (its coded partition is re-streamed to
// the replacement), and worker 1 is killed in the middle of a later
// round — the master folds its rows back into the assignment plan and
// the round still decodes, after which that slot is healed too. Every
// round's decode is checked against the local ground truth, and the
// cumulative recovery counters are printed at the end.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	s2c2 "github.com/coded-computing/s2c2"
)

const (
	n, k  = 4, 3
	iters = 10
)

// spawn dials one worker at the master and returns its handle, so the
// demo can kill it the way a real process death would: by severing its
// connection mid-whatever-it-was-doing.
func spawn(master *s2c2.Master) *s2c2.Worker {
	w, err := s2c2.NewWorker(s2c2.WorkerConfig{
		MasterAddr:  master.Addr(),
		Slowdown:    1,
		PerRowDelay: 200 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	go w.Run() //nolint:errcheck // lifetime ends with its connection
	return w
}

// heal parks one fresh spare and promotes it into every dead slot,
// re-streaming the slot's coded partition to the newcomer.
func heal(master *s2c2.Master) {
	spawn(master)
	deadline := time.Now().Add(5 * time.Second)
	for master.Spares() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	repaired, err := master.RepairWorkers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  healed %d dead slot(s) from the spare pool\n", repaired)
}

func main() {
	master, err := s2c2.NewMasterWithConfig(s2c2.MasterConfig{
		Addr:         "127.0.0.1:0",
		StallTimeout: 10 * time.Second,
		Retry:        s2c2.RetryConfig{MaxAttempts: 3, BaseBackoff: 20 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer master.Shutdown()

	workers := make([]*s2c2.Worker, n)
	for i := 0; i < n; i++ {
		workers[i] = spawn(master)
		if err := master.WaitForWorkers(i+1, 10*time.Second); err != nil {
			log.Fatal(err)
		}
	}
	// Late joiners park as warm spares instead of being turned away.
	master.StartAdmissions()
	fmt.Printf("cluster up: %d workers, admissions open\n", n)

	data := s2c2.NewClassificationDataset(400, 40, 21)
	code, err := s2c2.NewMDSCode(n, k)
	if err != nil {
		log.Fatal(err)
	}
	enc := code.Encode(data.X)
	if err := master.DistributePartitions(0, enc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed %d coded partitions of %d rows\n", n, enc.BlockRows)

	strat := &s2c2.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows}
	x := make([]float64, data.X.Cols())
	for i := range x {
		x[i] = 0.01
	}
	want := s2c2.MatVec(data.X, x)
	for iter := 0; iter < iters; iter++ {
		switch iter {
		case 3:
			// Failure 1: a clean death between rounds.
			fmt.Println("  !! killing worker 2 between rounds")
			workers[2].Close() //nolint:errcheck
		case 7:
			// Failure 2: a death while the round is in flight.
			fmt.Println("  !! killing worker 1 mid-round")
			w := workers[1]
			time.AfterFunc(2*time.Millisecond, func() { w.Close() }) //nolint:errcheck
		}
		plan, err := strat.Plan([]float64{1, 1, 1, 1})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		partials, stats, err := master.RunRound(iter, 0, x, plan, k, 10.0)
		if err != nil {
			log.Fatal(err)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if d := got[i] - want[i]; d > 1e-6 || d < -1e-6 {
				log.Fatalf("decode mismatch at row %d: %v vs %v", i, got[i], want[i])
			}
		}
		fmt.Printf("round %d: %6.1fms  dead %v  recovered rows %d\n",
			iter, float64(time.Since(start).Microseconds())/1000,
			stats.Recovery.DeadWorkers, stats.Recovery.RecoveredRows)
		if dead := master.DeadWorkers(); len(dead) > 0 {
			heal(master)
		}
	}

	t := master.RecoveryTotals()
	fmt.Printf("all rounds decoded correctly against local ground truth\n")
	fmt.Printf("recovery totals: %d re-streams, %d replacements admitted, %d evictions\n",
		t.ReStreams, t.ReplacementAdmits, t.Evictions)
	if t.ReplacementAdmits < 2 {
		log.Fatalf("expected both killed workers to be replaced, got %d replacements", t.ReplacementAdmits)
	}
}
