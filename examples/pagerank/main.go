// PageRank on a power-law web graph with an adaptive S2C2 cluster —
// the paper's §7.1.2 graph-ranking workload.
//
// The cluster's speeds drift over time (volatile cloud trace) and an
// AR(1) forecaster fitted online drives Algorithm 1's work assignment.
// Power iteration runs to convergence; the distributed ranking is
// checked against a local run.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"sort"

	s2c2 "github.com/coded-computing/s2c2"
)

func main() {
	const (
		nodes   = 600
		workers = 10
		k       = 7
	)
	g := s2c2.NewPowerLawGraph(nodes, 6, 11)
	mkJob := func() *s2c2.PageRank {
		return &s2c2.PageRank{Graph: g, Damping: 0.85, Tol: 1e-9}
	}

	// Fit the speed forecaster offline on traces from the same
	// environment, as the paper trains its LSTM on measured droplet data.
	var forecaster s2c2.AR1
	if err := forecaster.Fit(s2c2.CloudVolatile(workers, 200, 99).Speeds); err != nil {
		log.Fatal(err)
	}

	res, err := s2c2.Simulate(mkJob(), s2c2.SimConfig{
		N: workers, K: k,
		Strategy:   s2c2.S2C2Strategy(workers, k, 0),
		Forecaster: &forecaster,
		Trace:      s2c2.CloudVolatile(workers, 400, 12),
		Numeric:    true,
		MaxIter:    300,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d power iterations, mean iteration latency %.2fms\n",
		res.Iterations, res.Aggregate.MeanLatency()*1000)
	fmt.Printf("timeout recoveries: %d/%d rounds (prediction error > 15%%)\n",
		res.Aggregate.Mispredictions, res.Aggregate.Rounds)

	local, localIters := s2c2.RunLocal(mkJob(), 300)
	fmt.Printf("local power iteration converged in %d iterations\n", localIters)

	// Top 5 ranked nodes, distributed vs local.
	fmt.Println("\ntop-5 pages (distributed | local):")
	distTop := topK(res.State, 5)
	localTop := topK(local, 5)
	for i := 0; i < 5; i++ {
		fmt.Printf("  #%d  node %4d (%.5f)  |  node %4d (%.5f)\n",
			i+1, distTop[i].node, distTop[i].rank, localTop[i].node, localTop[i].rank)
	}
}

type ranked struct {
	node int
	rank float64
}

func topK(x []float64, k int) []ranked {
	rs := make([]ranked, len(x))
	for i, v := range x {
		rs[i] = ranked{i, v}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].rank > rs[b].rank })
	return rs[:k]
}
