// Hessian computation with polynomial codes + S2C2 — the paper's §5/§7.2.3
// extension beyond matrix–vector multiplication.
//
// A second-order optimiser needs H = Aᵀ·diag(s)·A every iteration, where
// s depends on the current model. A is column-split into a=3 blocks,
// polynomial-encoded onto 12 workers (any a·b = 9 of 12 rows decode), and
// S2C2 assigns each worker a row range of its product block proportional
// to its speed — so the partial straggler contributes partial work
// instead of being discarded (Figure 5's scenario, at a=b=3).
//
//	go run ./examples/hessian
package main

import (
	"fmt"
	"log"

	s2c2 "github.com/coded-computing/s2c2"
)

func main() {
	const (
		n, a, b = 12, 3, 3
		rows    = 240
		cols    = 90
	)
	data := s2c2.NewClassificationDataset(rows, cols, 5)

	code, err := s2c2.NewPolyCode(n, a, b)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := code.EncodeHessian(data.X)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polynomial code: %d workers, %dx%d block grid, any %d decode\n",
		n, a, b, code.RecoveryThreshold())
	fmt.Printf("each worker holds encoded partitions of %d columns (of %d total)\n",
		enc.BlockColsA, cols)

	// Speeds: 11 healthy workers, worker 11 a partial straggler at 1/3
	// speed. General S2C2 gives it a proportionally smaller row range.
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[11] = 1.0 / 3
	strat := &s2c2.GeneralS2C2{
		N: n, K: code.RecoveryThreshold(),
		BlockRows: enc.BlockColsA, Granularity: enc.BlockColsA,
	}
	plan, err := strat.Plan(speeds)
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < n; w++ {
		fmt.Printf("worker %2d (speed %.2f): %d/%d product rows\n",
			w, speeds[w], plan.RowsFor(w), enc.BlockColsA)
	}

	// The diag(s) vector of a logistic-regression Hessian: σ(z)(1−σ(z)).
	d := make([]float64, rows)
	for i := range d {
		d[i] = 0.25 // w = 0 → σ(0)(1−σ(0))
	}
	var partials []*s2c2.Partial
	for w := 0; w < n; w++ {
		if plan.RowsFor(w) > 0 {
			partials = append(partials, enc.WorkerCompute(w, d, plan.Assignments[w]))
		}
	}
	h, err := enc.Decode(partials)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the locally computed Hessian.
	want := localHessian(data, d)
	maxDiff := 0.0
	for i := 0; i < cols; i++ {
		for j := 0; j < cols; j++ {
			diff := h.At(i, j) - want.At(i, j)
			if diff < 0 {
				diff = -diff
			}
			if diff > maxDiff {
				maxDiff = diff
			}
		}
	}
	fmt.Printf("\ndecoded %dx%d Hessian; max |coded − local| entry difference: %.2e\n",
		cols, cols, maxDiff)
}

func localHessian(data *s2c2.ClassificationDataset, d []float64) *s2c2.Dense {
	at := s2c2.Transpose(data.X)
	// Aᵀ·diag(d)·A computed column by column through the public mat-vec.
	cols := data.X.Cols()
	h := s2c2.NewDense(cols, cols)
	for j := 0; j < cols; j++ {
		e := make([]float64, cols)
		e[j] = 1
		ae := s2c2.MatVec(data.X, e)
		for i := range ae {
			ae[i] *= d[i]
		}
		col := s2c2.MatVec(at, ae)
		for i := 0; i < cols; i++ {
			h.Set(i, j, col[i])
		}
	}
	return h
}
