// Distributed: a real TCP cluster on loopback — master plus four worker
// processes-worth of goroutines, one of them an 8× straggler.
//
// This exercises the actual network runtime (the binary wire protocol
// over TCP, §6 of the paper): coded partitions are streamed once in
// credit-controlled chunks, every round broadcasts the vector plus
// per-worker S2C2 assignments under a per-round context, the master
// measures real response times, applies the 15% timeout, and decodes from
// whichever workers cover each row. The same binaries (cmd/s2c2-master,
// cmd/s2c2-worker) run across real machines.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	s2c2 "github.com/coded-computing/s2c2"
)

func main() {
	const (
		n, k  = 4, 3
		iters = 8
	)
	master, err := s2c2.NewMasterWithConfig(s2c2.MasterConfig{
		Addr:         "127.0.0.1:0",
		StallTimeout: 10 * time.Second, // fail rounds fast on a loopback demo
		ChunkRows:    64,               // stream partitions in 64-row chunks
		ChunkWindow:  4,                // ≤ 4 unacknowledged chunks in flight
	})
	if err != nil {
		log.Fatal(err)
	}
	defer master.Shutdown()

	// Launch workers sequentially so IDs are deterministic; worker 3 is a
	// straggler with an 8x artificial slowdown.
	for i := 0; i < n; i++ {
		slow := 1.0
		if i == 3 {
			slow = 8.0
		}
		cfg := s2c2.WorkerConfig{
			MasterAddr:  master.Addr(),
			Slowdown:    slow,
			PerRowDelay: 100 * time.Microsecond,
		}
		go func() {
			w, err := s2c2.NewWorker(cfg)
			if err != nil {
				log.Fatal(err)
			}
			_ = w.Run()
		}()
		if err := master.WaitForWorkers(i+1, 10*time.Second); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cluster up: %d workers (worker 3 runs 8x slow)\n", n)

	// Encode and ship the data once.
	data := s2c2.NewClassificationDataset(400, 40, 21)
	code, err := s2c2.NewMDSCode(n, k)
	if err != nil {
		log.Fatal(err)
	}
	enc := code.Encode(data.X)
	if err := master.DistributePartitions(0, enc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed %d coded partitions of %d rows\n", n, enc.BlockRows)

	// Iterate: speeds observed from real response times feed the plan.
	strat := &s2c2.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows}
	speeds := []float64{1, 1, 1, 1} // bootstrap assumption
	w := make([]float64, data.X.Cols())
	for i := range w {
		w[i] = 0.01
	}
	want := s2c2.MatVec(data.X, w)
	for iter := 0; iter < iters; iter++ {
		plan, err := strat.Plan(speeds)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		// Each round runs under its own context: a caller could cancel a
		// straggling round and move on instead of waiting out the stall
		// deadline.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		partials, stats, err := master.RunRoundContext(ctx, iter, 0, w, plan, k, 0.15)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			log.Fatal(err)
		}
		checkClose(got, want)
		// Observed rows/sec become the next round's speed estimates —
		// the straggler's share shrinks after round 0.
		for wk := 0; wk < n; wk++ {
			if stats.ResponseTime[wk] > 0 && stats.AssignedRows[wk] > 0 {
				speeds[wk] = float64(stats.AssignedRows[wk]) / stats.ResponseTime[wk].Seconds()
			}
		}
		fmt.Printf("round %d: %6.1fms  rows/worker %v  timed-out %v\n",
			iter, float64(time.Since(start).Microseconds())/1000,
			stats.AssignedRows, stats.TimedOut)
	}
	fmt.Println("all rounds decoded correctly against local ground truth")
}

func checkClose(got, want []float64) {
	for i := range want {
		d := got[i] - want[i]
		if d > 1e-6 || d < -1e-6 {
			log.Fatalf("decode mismatch at row %d: %v vs %v", i, got[i], want[i])
		}
	}
}
